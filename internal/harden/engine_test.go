package harden

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"malevade/internal/attack"
	"malevade/internal/campaign"
	"malevade/internal/dataset"
	"malevade/internal/harden/spec"
	"malevade/internal/nn"
	"malevade/internal/registry"
	"malevade/internal/tensor"
)

// featureWidth is the corpus feature width every profile produces; the fake
// campaigns' adversarial rows must match it for the (real) retraining the
// controller runs between campaigns.
const featureWidth = 491

// fakeCamp is one simulated campaign's state inside fakeCampaigns.
type fakeCamp struct {
	rate      float64
	cancelled bool
	gated     bool
}

// fakeCampaigns simulates the campaign engine: every submitted campaign is
// immediately running, completes with the next scripted evasion rate the
// moment it is polled (unless gated), and honors Cancel. Rates past the end
// of the script repeat the last entry.
type fakeCampaigns struct {
	mu      sync.Mutex
	seq     int
	camps   map[string]*fakeCamp
	rates   []float64
	rows    *tensor.Matrix
	gate    chan struct{} // non-nil: campaigns stay running until closed
	submits int
	cancels int
}

func newFakeCampaigns(rates []float64, rows *tensor.Matrix) *fakeCampaigns {
	return &fakeCampaigns{camps: map[string]*fakeCamp{}, rates: rates, rows: rows}
}

func (f *fakeCampaigns) Submit(sp campaign.Spec) (campaign.Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := f.seq
	f.seq++
	f.submits++
	id := fmt.Sprintf("c%06d", f.seq)
	rate := f.rates[min(idx, len(f.rates)-1)]
	f.camps[id] = &fakeCamp{rate: rate, gated: f.gate != nil}
	return campaign.Snapshot{ID: id, Spec: sp, Status: campaign.StatusRunning, StartedAt: time.Now()}, nil
}

func (f *fakeCampaigns) Get(id string, offset int) (campaign.Snapshot, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.camps[id]
	if !ok {
		return campaign.Snapshot{}, false
	}
	snap := campaign.Snapshot{ID: id, StartedAt: time.Now(), Generations: []int64{1}, BaselineDetectionRate: 0.9}
	switch {
	case c.cancelled:
		snap.Status = campaign.StatusCancelled
		snap.Error = "cancelled"
	case c.gated:
		select {
		case <-f.gate:
			c.gated = false
			return f.doneLocked(snap, c, offset), true
		default:
			snap.Status = campaign.StatusRunning
		}
	default:
		return f.doneLocked(snap, c, offset), true
	}
	return snap, true
}

// doneLocked renders a completed campaign: the scripted evasion rate, and —
// when the rate is positive — every fake adversarial row marked evaded.
func (f *fakeCampaigns) doneLocked(snap campaign.Snapshot, c *fakeCamp, offset int) campaign.Snapshot {
	snap.Status = campaign.StatusDone
	snap.EvasionRate = c.rate
	if c.rate > 0 && f.rows != nil {
		snap.TotalSamples = f.rows.Rows
		snap.DoneSamples = f.rows.Rows
		if offset == 0 {
			for i := 0; i < f.rows.Rows; i++ {
				snap.Results = append(snap.Results, campaign.SampleResult{
					Index:       i,
					Evaded:      true,
					Generation:  1,
					Adversarial: append([]float64(nil), f.rows.Row(i)...),
				})
			}
		}
	}
	return snap
}

func (f *fakeCampaigns) Cancel(id string) (campaign.Snapshot, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.camps[id]
	if !ok {
		return campaign.Snapshot{}, false
	}
	c.cancelled = true
	f.cancels++
	return campaign.Snapshot{ID: id, Status: campaign.StatusCancelled}, true
}

// fakeModels simulates the registry: one known model ("prod"), versions
// bumped on every Register, a scripted one-shot ErrFull to exercise the
// GC-and-retry path.
type fakeModels struct {
	mu        sync.Mutex
	live      int
	gen       int64
	loadLives int
	registers int
	gcs       int
	failFull  bool // next Register fails with ErrFull (cleared by GC)
}

func (m *fakeModels) Get(name string) (registry.Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if name != "prod" {
		return registry.Info{}, fmt.Errorf("%w %q", registry.ErrUnknownModel, name)
	}
	return registry.Info{Name: name, Live: m.live, Generation: m.gen}, nil
}

func (m *fakeModels) LoadLive(name string) (*nn.Network, error) {
	m.mu.Lock()
	m.loadLives++
	m.mu.Unlock()
	return nn.NewMLP(nn.MLPConfig{Dims: []int{featureWidth, 8, 2}, Seed: 5})
}

func (m *fakeModels) Register(req registry.RegisterRequest) (registry.Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failFull && m.gcs == 0 {
		return registry.Info{}, registry.ErrFull
	}
	if _, err := os.Stat(req.Path); err != nil {
		return registry.Info{}, fmt.Errorf("fake registry: model file: %w", err)
	}
	m.registers++
	m.live++
	m.gen++
	return registry.Info{Name: req.Name, Live: m.live, Generation: m.gen}, nil
}

func (m *fakeModels) GC(name string) (registry.Info, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gcs++
	return registry.Info{Name: name, Live: m.live, Generation: m.gen}, 1, nil
}

// advRows builds n deterministic, pairwise-distinct adversarial rows of the
// corpus feature width, none of which appear in any generated corpus (the
// 0.37 marker value never occurs in normalized call-count features).
func advRows(n int) *tensor.Matrix {
	m := tensor.New(n, featureWidth)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		row[i%featureWidth] = 0.37
		row[(i*7+3)%featureWidth] = 1
	}
	return m
}

func validSpec() Spec {
	return Spec{
		Model:  "prod",
		Attack: attack.Config{Kind: attack.KindFGSM, Theta: 0.1},
		Epochs: 1,
		Seed:   43,
	}
}

func newTestEngine(t testing.TB, dir string, c Campaigns, m Models, mutate func(*Options)) *Engine {
	t.Helper()
	opts := Options{Dir: dir, Campaigns: c, Models: m, PollInterval: time.Millisecond}
	if mutate != nil {
		mutate(&opts)
	}
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func waitHardenStatus(t testing.TB, e *Engine, id string, cond func(spec.Snapshot) bool, what string) spec.Snapshot {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		if snap, ok := e.Get(id); ok && cond(snap) {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap, _ := e.Get(id)
	t.Fatalf("timed out waiting for %s (job %s: %+v)", what, id, snap)
	return spec.Snapshot{}
}

func waitHardenTerminal(t testing.TB, e *Engine, id string) spec.Snapshot {
	t.Helper()
	return waitHardenStatus(t, e, id, func(s spec.Snapshot) bool { return s.Status.Terminal() }, "terminal status")
}

// stableGoroutines samples the goroutine count after a settle pause, so
// earlier tests' dying goroutines don't inflate the baseline.
func stableGoroutines(t testing.TB) int {
	t.Helper()
	var n int
	for i := 0; i < 50; i++ {
		runtime.GC()
		n = runtime.NumGoroutine()
		time.Sleep(2 * time.Millisecond)
		if runtime.NumGoroutine() == n {
			return n
		}
	}
	return n
}

// assertNoGoroutineLeak verifies the goroutine count returns to the baseline
// (with a little slack for runtime helpers) after engine Close.
func assertNoGoroutineLeak(t testing.TB, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last int
	for time.Now().Before(deadline) {
		runtime.GC()
		last = runtime.NumGoroutine()
		if last <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 64<<10)
	t.Fatalf("goroutine leak: %d live, baseline %d\n%s", last, baseline, buf[:runtime.Stack(buf, true)])
}

// TestHardenSpecValidate covers the submit-time spec contract: required
// model, the model/target_url conflict, budget and rate bounds, non-finite
// rejection.
func TestHardenSpecValidate(t *testing.T) {
	ok := validSpec()
	if err := ok.Validate(16); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"missing model", func(s *Spec) { s.Model = "" }},
		{"target url conflict", func(s *Spec) { s.TargetURL = "http://example.com" }},
		{"bad attack kind", func(s *Spec) { s.Attack.Kind = "nope" }},
		{"negative rounds", func(s *Spec) { s.Rounds = -1 }},
		{"rounds over cap", func(s *Spec) { s.Rounds = 17 }},
		{"NaN target rate", func(s *Spec) { s.TargetEvasionRate = math.NaN() }},
		{"Inf target rate", func(s *Spec) { s.TargetEvasionRate = math.Inf(1) }},
		{"negative target rate", func(s *Spec) { s.TargetEvasionRate = -0.1 }},
		{"target rate above one", func(s *Spec) { s.TargetEvasionRate = 1.5 }},
		{"negative max samples", func(s *Spec) { s.MaxSamples = -1 }},
		{"negative batch size", func(s *Spec) { s.BatchSize = -1 }},
		{"negative epochs", func(s *Spec) { s.Epochs = -1 }},
	}
	for _, tc := range cases {
		sp := validSpec()
		tc.mutate(&sp)
		if err := sp.Validate(16); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, sp)
		}
	}
	if got := (Spec{}).RoundBudget(); got != 1 {
		t.Errorf("zero-spec round budget %d, want 1", got)
	}
	if got := (Spec{Rounds: 3}).RoundBudget(); got != 3 {
		t.Errorf("round budget %d, want 3", got)
	}
	if got := (Spec{Seed: 40}).TrainSeed(2); got != 42 {
		t.Errorf("train seed %d, want 42", got)
	}
	// The derived campaign spec must pin crafting and keep rows: those two
	// fields are what make harvesting and bit-identical replay possible.
	cs := validSpec().CampaignSpec("/tmp/craft.gob")
	if cs.CraftModelPath != "/tmp/craft.gob" || !cs.KeepRows || cs.TargetModel != "prod" {
		t.Errorf("campaign spec %+v: want pinned crafting, KeepRows, target model prod", cs)
	}
}

// TestHardenSubmitErrors covers the synchronous submit failures: unknown
// model, no live version, unknown profile, queue backpressure, closed
// engine.
func TestHardenSubmitErrors(t *testing.T) {
	baseline := stableGoroutines(t)
	models := &fakeModels{live: 1}
	camps := newFakeCampaigns([]float64{0.5}, nil)
	camps.gate = make(chan struct{})
	e := newTestEngine(t, t.TempDir(), camps, models, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 1
	})

	sp := validSpec()
	sp.Model = "ghost"
	if _, err := e.Submit(sp); !errors.Is(err, registry.ErrUnknownModel) {
		t.Errorf("unknown model: err %v, want ErrUnknownModel", err)
	}
	sp = validSpec()
	sp.Profile = "mega"
	if _, err := e.Submit(sp); err == nil {
		t.Error("unknown profile accepted")
	}
	models.mu.Lock()
	models.live = 0
	models.mu.Unlock()
	if _, err := e.Submit(validSpec()); !errors.Is(err, registry.ErrVersionConflict) {
		t.Errorf("no live version: err %v, want ErrVersionConflict", err)
	}
	models.mu.Lock()
	models.live = 1
	models.mu.Unlock()

	// One job occupies the worker (its campaign is gated open), one fills
	// the queue; the third must bounce with ErrQueueFull.
	first, err := e.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitHardenStatus(t, e, first.ID, func(s spec.Snapshot) bool { return s.Status == spec.StatusRunning }, "first job to start")
	queued, err := e.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(validSpec()); !errors.Is(err, ErrQueueFull) {
		t.Errorf("third submit: err %v, want ErrQueueFull", err)
	}
	// Release the gate so both jobs drain (their campaigns produce no
	// harvestable rows, so neither retrains), then verify ids stayed
	// contiguous across the rejected submit.
	close(camps.gate)
	waitHardenTerminal(t, e, first.ID)
	waitHardenTerminal(t, e, queued.ID)
	next, err := e.Submit(validSpec())
	if err != nil {
		t.Fatalf("submit after queue drained: %v", err)
	}
	if want := "h000003"; next.ID != want {
		t.Errorf("id after rejected submit %s, want %s", next.ID, want)
	}
	waitHardenTerminal(t, e, next.ID)

	e.Close()
	if _, err := e.Submit(validSpec()); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err %v, want ErrClosed", err)
	}
	assertNoGoroutineLeak(t, baseline)
}

// TestHardenStateRoundtrip covers the durable-state layer directly: atomic
// write, format validation, corrupt-file quarantine, id ordering.
func TestHardenStateRoundtrip(t *testing.T) {
	dir := t.TempDir()
	second := state{Format: stateFormat, Snapshot: spec.Snapshot{ID: "h000002", Status: spec.StatusRunning}, CraftFile: "h000002-craft.gob"}
	first := state{Format: stateFormat, Snapshot: spec.Snapshot{ID: "h000001", Status: spec.StatusDone}}
	for _, st := range []state{second, first} {
		if err := writeState(dir, st); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "h000003.json"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := readState(filepath.Join(dir, "h000002.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Snapshot.ID != "h000002" || got.CraftFile != "h000002-craft.gob" {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	if _, err := readState(filepath.Join(dir, "h000003.json")); err == nil {
		t.Error("corrupt state file read without error")
	}
	bad := state{Format: stateFormat + 1, Snapshot: spec.Snapshot{ID: "h000009"}}
	if err := writeState(dir, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := readState(filepath.Join(dir, "h000009.json")); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("future-format file: err %v, want format mismatch", err)
	}

	states, skipped := loadStates(dir)
	if len(states) != 2 || states[0].Snapshot.ID != "h000001" || states[1].Snapshot.ID != "h000002" {
		t.Fatalf("loadStates returned %d states (%v), want h000001,h000002", len(states), states)
	}
	if len(skipped) != 2 {
		t.Errorf("skipped %v, want the corrupt and future-format files", skipped)
	}
	if n, ok := seqOf("h000042"); !ok || n != 42 {
		t.Errorf("seqOf(h000042) = %d,%v", n, ok)
	}
	if _, ok := seqOf("c000042"); ok {
		t.Error("seqOf accepted a campaign id")
	}
}

// TestHardenStopsWithoutRetraining: the two zero-round exits — a first
// campaign already at the target rate, and a campaign with nothing to
// harvest — must finish Done with the right stop reason, no registrations,
// and no crafting snapshot left behind.
func TestHardenStopsWithoutRetraining(t *testing.T) {
	cases := []struct {
		name   string
		rates  []float64
		target float64
		stop   string
	}{
		{"no evasions", []float64{0}, 0, spec.StopNoEvasions},
		{"target already met", []float64{0.05}, 0.1, spec.StopTargetReached},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			models := &fakeModels{live: 1}
			e := newTestEngine(t, dir, newFakeCampaigns(tc.rates, advRows(4)), models, nil)
			defer e.Close()
			sp := validSpec()
			sp.Rounds = 3
			sp.TargetEvasionRate = tc.target
			snap, err := e.Submit(sp)
			if err != nil {
				t.Fatal(err)
			}
			final := waitHardenTerminal(t, e, snap.ID)
			if final.Status != spec.StatusDone || final.StopReason != tc.stop {
				t.Fatalf("status %s stop %q (%s), want done/%s", final.Status, final.StopReason, final.Error, tc.stop)
			}
			if len(final.Rounds) != 0 || final.Campaigns != 1 || models.registers != 0 {
				t.Errorf("rounds %d campaigns %d registers %d, want 0/1/0", len(final.Rounds), final.Campaigns, models.registers)
			}
			if final.EvasionRate != tc.rates[0] {
				t.Errorf("evasion rate %v, want %v", final.EvasionRate, tc.rates[0])
			}
			// The crafting snapshot is deleted with the terminal state; the
			// job state file itself is history and stays.
			if _, err := os.Stat(filepath.Join(dir, snap.ID+"-craft.gob")); !os.IsNotExist(err) {
				t.Errorf("crafting snapshot still on disk after terminal job (err %v)", err)
			}
			if _, err := os.Stat(filepath.Join(dir, snap.ID+".json")); err != nil {
				t.Errorf("terminal job state missing: %v", err)
			}
		})
	}
}

// TestHardenRoundsAndResume is the controller's core contract in one run:
// scripted rates drop 0.8→0.6→0.4→0.2 over a 3-round budget, the engine is
// closed mid-job after round 1 (a daemon shutdown), and a reopened engine on
// the same directory must resume at the recorded round — reusing the
// persisted crafting snapshot, not re-pinning a fresh one — and complete all
// three rounds with the re-attack chain intact.
func TestHardenRoundsAndResume(t *testing.T) {
	baseline := stableGoroutines(t)
	dir := t.TempDir()
	rows := advRows(6)
	models := &fakeModels{live: 1, failFull: true} // first Register exercises GC-and-retry
	camps1 := newFakeCampaigns([]float64{0.8, 0.6}, rows)

	roundDone := make(chan struct{})
	hold := make(chan struct{})
	e1 := newTestEngine(t, dir, camps1, models, func(o *Options) {
		o.roundHook = func(id string, round int) {
			if round == 1 {
				close(roundDone)
				<-hold
			}
		}
	})
	sp := validSpec()
	sp.Rounds = 3
	snap, err := e1.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	<-roundDone
	// Gate the next campaign open so the shutdown deterministically lands
	// inside round 2, then release the hook and close the engine mid-job.
	camps1.mu.Lock()
	camps1.gate = make(chan struct{})
	camps1.mu.Unlock()
	close(hold)
	waitHardenStatus(t, e1, snap.ID, func(s spec.Snapshot) bool { return len(s.Rounds) == 1 && s.CurrentCampaign != "" },
		"round 2's campaign to be in flight")
	e1.Close()
	assertNoGoroutineLeak(t, baseline)
	if models.gcs != 1 || models.registers != 1 {
		t.Fatalf("round 1 registered %d times with %d GCs, want 1/1 (ErrFull retry)", models.registers, models.gcs)
	}

	// The durable state must still say "running": a shutdown is not a
	// cancellation, and that distinction is what makes the job resumable.
	st, err := readState(filepath.Join(dir, snap.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot.Status != spec.StatusRunning || len(st.Snapshot.Rounds) != 1 {
		t.Fatalf("durable state after shutdown: status %s rounds %d, want running/1", st.Snapshot.Status, len(st.Snapshot.Rounds))
	}
	if st.CraftFile == "" {
		t.Fatal("durable state lost the crafting snapshot name")
	}

	// Reopen on the same directory: the job requeues itself, re-runs the
	// interrupted campaign (rates continue at 0.6) and completes the budget.
	camps2 := newFakeCampaigns([]float64{0.6, 0.4, 0.2}, rows)
	loadLivesBefore := models.loadLives
	e2 := newTestEngine(t, dir, camps2, models, nil)
	defer e2.Close()
	final := waitHardenTerminal(t, e2, snap.ID)
	if final.Status != spec.StatusDone || final.StopReason != spec.StopRoundBudget {
		t.Fatalf("resumed job: status %s stop %q (%s), want done/round_budget", final.Status, final.StopReason, final.Error)
	}
	if !final.Resumed {
		t.Error("resumed job does not report Resumed")
	}
	if len(final.Rounds) != 3 {
		t.Fatalf("resumed job completed %d rounds, want 3", len(final.Rounds))
	}
	wantBefore := []float64{0.8, 0.6, 0.4}
	wantAfter := []float64{0.6, 0.4, 0.2}
	for i, r := range final.Rounds {
		if r.Round != i+1 || r.EvasionBefore != wantBefore[i] || r.EvasionAfter != wantAfter[i] || r.ReattackID == "" {
			t.Errorf("round %d: %+v, want before %v after %v with a re-attack id", i+1, r, wantBefore[i], wantAfter[i])
		}
		if r.RowsHarvested != rows.Rows {
			t.Errorf("round %d harvested %d rows, want %d", i+1, r.RowsHarvested, rows.Rows)
		}
		if r.TrainSeed != sp.Seed+uint64(i+1) {
			t.Errorf("round %d trained with seed %d, want %d", i+1, r.TrainSeed, sp.Seed+uint64(i+1))
		}
	}
	if want := []int{2, 3, 4}; len(final.Versions) != 3 || final.Versions[0] != want[0] || final.Versions[1] != want[1] || final.Versions[2] != want[2] {
		t.Errorf("promoted versions %v, want %v", final.Versions, want)
	}
	if final.EvasionRate != 0.2 {
		t.Errorf("final evasion rate %v, want 0.2", final.EvasionRate)
	}
	if models.loadLives != loadLivesBefore {
		t.Errorf("resume re-pinned the crafting model (%d extra LoadLive calls); it must reuse the persisted snapshot",
			models.loadLives-loadLivesBefore)
	}
	if _, err := os.Stat(filepath.Join(dir, snap.ID+"-craft.gob")); !os.IsNotExist(err) {
		t.Errorf("crafting snapshot survives the terminal job (err %v)", err)
	}
	if models.registers != 3 {
		t.Errorf("registered %d hardened versions, want 3", models.registers)
	}
}

// TestHardenUserCancelPersists: an operator cancel is terminal on disk too —
// the campaign in flight is cancelled, the job converges to cancelled, and a
// reopened engine lists it as history instead of resuming it.
func TestHardenUserCancelPersists(t *testing.T) {
	baseline := stableGoroutines(t)
	dir := t.TempDir()
	models := &fakeModels{live: 1}
	camps := newFakeCampaigns([]float64{0.8}, advRows(4))
	camps.gate = make(chan struct{}) // campaigns never complete on their own
	e := newTestEngine(t, dir, camps, models, nil)

	snap, err := e.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitHardenStatus(t, e, snap.ID, func(s spec.Snapshot) bool { return s.CurrentCampaign != "" },
		"the round's campaign to be in flight")
	if _, ok := e.Cancel(snap.ID); !ok {
		t.Fatal("Cancel did not find the job")
	}
	final := waitHardenTerminal(t, e, snap.ID)
	if final.Status != spec.StatusCancelled {
		t.Fatalf("status %s, want cancelled", final.Status)
	}
	if camps.cancels == 0 {
		t.Error("job cancel did not cancel its in-flight campaign")
	}
	e.Close()
	assertNoGoroutineLeak(t, baseline)

	// Reopened engine: the cancel survives as history, nothing resumes.
	camps2 := newFakeCampaigns([]float64{0.8}, nil)
	e2 := newTestEngine(t, dir, camps2, models, nil)
	defer e2.Close()
	got, ok := e2.Get(snap.ID)
	if !ok || got.Status != spec.StatusCancelled {
		t.Fatalf("after restart: ok=%v status=%v, want cancelled history", ok, got.Status)
	}
	time.Sleep(20 * time.Millisecond)
	if camps2.submits != 0 {
		t.Errorf("cancelled job resumed after restart (%d campaigns submitted)", camps2.submits)
	}
	if _, err := os.Stat(filepath.Join(dir, snap.ID+"-craft.gob")); !os.IsNotExist(err) {
		t.Errorf("cancelled job's crafting snapshot still on disk (err %v)", err)
	}
	assertNoGoroutineLeak(t, baseline)
}

// TestHardenCancelMidRetrain: a cancel that lands while the round's
// retraining fit is running must abort at the next epoch boundary (the
// OnEpoch hook), converge to cancelled without registering anything, and
// leak no goroutines.
func TestHardenCancelMidRetrain(t *testing.T) {
	baseline := stableGoroutines(t)
	models := &fakeModels{live: 1}
	e := newTestEngine(t, t.TempDir(), newFakeCampaigns([]float64{0.9}, advRows(4)), models, nil)

	sp := validSpec()
	sp.Rounds = 2
	sp.Epochs = 100000 // far beyond what could finish before the cancel
	snap, err := e.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	// The campaign completes instantly; once it is counted, the worker is
	// heading into (or already inside) the retraining fit.
	waitHardenStatus(t, e, snap.ID, func(s spec.Snapshot) bool { return s.Campaigns >= 1 }, "the first campaign to land")
	if _, ok := e.Cancel(snap.ID); !ok {
		t.Fatal("Cancel did not find the job")
	}
	final := waitHardenTerminal(t, e, snap.ID)
	if final.Status != spec.StatusCancelled {
		t.Fatalf("status %s (%s), want cancelled mid-retrain", final.Status, final.Error)
	}
	if len(final.Rounds) != 0 || models.registers != 0 {
		t.Errorf("cancelled mid-retrain but recorded %d rounds, %d registrations", len(final.Rounds), models.registers)
	}
	e.Close()
	assertNoGoroutineLeak(t, baseline)
}

// TestHardenQueuedCancelAndEviction: cancelling a queued job finalizes it
// without running it, and MaxHistory eviction removes terminal jobs' files
// from disk.
func TestHardenQueuedCancelAndEviction(t *testing.T) {
	dir := t.TempDir()
	models := &fakeModels{live: 1}
	camps := newFakeCampaigns([]float64{0}, nil)
	camps.gate = make(chan struct{})
	e := newTestEngine(t, dir, camps, models, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 4
		o.MaxHistory = 2
	})
	defer e.Close()

	running, err := e.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitHardenStatus(t, e, running.ID, func(s spec.Snapshot) bool { return s.Status == spec.StatusRunning }, "first job to start")
	queued, err := e.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := e.Cancel(queued.ID); !ok || got.Status != spec.StatusCancelled {
		t.Fatalf("cancel queued job: ok=%v status=%v, want cancelled immediately", ok, got.Status)
	}
	if st, err := readState(filepath.Join(dir, queued.ID+".json")); err != nil || st.Snapshot.Status != spec.StatusCancelled {
		t.Fatalf("queued cancel not persisted: %v / %+v", err, st.Snapshot.Status)
	}
	if camps.submits != 1 {
		t.Errorf("cancelled-while-queued job submitted a campaign (%d submits)", camps.submits)
	}

	// Two more terminal jobs push history past MaxHistory=2: the oldest
	// terminal job (the cancelled one) must vanish from memory and disk.
	close(camps.gate)
	waitHardenTerminal(t, e, running.ID)
	third, err := e.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitHardenTerminal(t, e, third.ID)
	fourth, err := e.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitHardenTerminal(t, e, fourth.ID)
	if _, ok := e.Get(queued.ID); ok {
		t.Errorf("evicted job %s still answers Get", queued.ID)
	}
	if _, err := os.Stat(filepath.Join(dir, queued.ID+".json")); !os.IsNotExist(err) {
		t.Errorf("evicted job's state file still on disk (err %v)", err)
	}
	if len(e.List()) > 3 {
		t.Errorf("history holds %d jobs with MaxHistory 2 (+1 live)", len(e.List()))
	}
}

// TestHarvestEvasions: only evaded samples carrying rows are harvested, in
// population order, and a row-free campaign harvests nil.
func TestHarvestEvasions(t *testing.T) {
	camp := campaign.Snapshot{Results: []campaign.SampleResult{
		{Index: 0, Evaded: true, Adversarial: []float64{1, 0}},
		{Index: 1, Evaded: false, Adversarial: []float64{9, 9}},
		{Index: 2, Evaded: true}, // evaded but KeepRows was off for it
		{Index: 3, Evaded: true, Adversarial: []float64{0, 1}},
	}}
	m := HarvestEvasions(camp)
	if m == nil || m.Rows != 2 || m.Cols != 2 {
		t.Fatalf("harvested %+v, want 2×2", m)
	}
	if m.At(0, 0) != 1 || m.At(1, 1) != 1 {
		t.Errorf("harvested rows out of order: %v %v", m.Row(0), m.Row(1))
	}
	if HarvestEvasions(campaign.Snapshot{}) != nil {
		t.Error("empty campaign harvested a non-nil matrix")
	}
	// dataset.Generate-backed sanity: the fake rows in this file really are
	// corpus-width, or every retraining test above would be vacuous.
	c, err := dataset.Generate(dataset.TableIConfig(3).Scaled(600))
	if err != nil {
		t.Fatal(err)
	}
	if c.Train.X.Cols != featureWidth {
		t.Fatalf("corpus width %d, featureWidth const %d", c.Train.X.Cols, featureWidth)
	}
}
