// Package harden closes the paper's defense-evaluation loop as an online
// controller: attack a named registry model with an evasion campaign,
// harvest the successful evasions as labelled malware rows, adversarially
// retrain the model on them (defense/advtrain), register and atomically
// promote the hardened version through the model registry, then re-attack
// to measure the per-round evasion-rate drop — until a target rate or the
// round budget.
//
// The controller runs jobs on a bounded worker pool, like the campaign
// engine it drives, with one addition: every job persists its snapshot (and
// the crafting-model snapshot it attacks with) under a state directory next
// to the registry, so a restarted daemon resumes an in-flight job at its
// last recorded round instead of losing it. Crafting is pinned to the
// target's live version as of job start — the paper's fixed-adversarial-
// examples methodology — so the measured drop is attributable to
// retraining, not to a moving crafting gradient.
//
// The wire types live in the leaf package internal/harden/spec, which both
// this package and the client SDK import; the aliases below let everything
// server-side spell them harden.Spec, harden.Snapshot, and so on.
package harden

import (
	"malevade/internal/harden/spec"
)

// Spec describes one hardening job (alias of the wire type).
type Spec = spec.Spec

// Round records one completed attack→retrain→promote round's metrics
// (alias of the wire type).
type Round = spec.Round

// Snapshot is a point-in-time view of a hardening job (alias of the wire
// type).
type Snapshot = spec.Snapshot

// Status is a hardening job's lifecycle state — the same state machine as
// campaigns.
type Status = spec.Status

// The hardening job lifecycle, shared with the campaign taxonomy.
const (
	StatusQueued    = spec.StatusQueued
	StatusRunning   = spec.StatusRunning
	StatusDone      = spec.StatusDone
	StatusFailed    = spec.StatusFailed
	StatusCancelled = spec.StatusCancelled
)

// Stop reasons recorded in Snapshot.StopReason when a job completes.
const (
	StopRoundBudget   = spec.StopRoundBudget
	StopTargetReached = spec.StopTargetReached
	StopNoEvasions    = spec.StopNoEvasions
)
