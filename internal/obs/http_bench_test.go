package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkMiddlewarePerRequest measures the absolute per-request cost
// of the HTTP middleware — request-ID resolution, the three metric
// families, the status recorder — over a no-op handler. BENCH_obs.json
// divides this by the binary fast path's per-frame time to bound the
// middleware's relative overhead, because on shared CI hardware the
// end-to-end instrumented/uninstrumented pair is noisier than the
// quantity being measured.
func BenchmarkMiddlewarePerRequest(b *testing.B) {
	reg := NewRegistry()
	h := NewHTTP(reg, nil, nil).Wrap(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))
	req := httptest.NewRequest(http.MethodPost, "/v1/score", nil)
	req.Header.Set(RequestIDHeader, "bench-1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
	}
}
