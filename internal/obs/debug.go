package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler serves net/http/pprof under /debug/pprof/. It is only ever
// bound to the private -debug-addr listener — never mounted on the public
// mux — and routes are registered explicitly rather than through
// pprof's DefaultServeMux side effects.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
