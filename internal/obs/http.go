package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// RequestIDHeader carries the per-request correlation ID. The edge tier
// (gateway, or the daemon when hit directly) generates one if the caller
// did not send a valid ID; every inner hop propagates it verbatim, so one
// ID follows a request across the fleet and appears in every tier's
// access log and in the response.
const RequestIDHeader = "X-Malevade-Request-Id"

type requestIDKey struct{}

// WithRequestID stores a request ID in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID stored in the context, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

var requestIDFallback atomic.Int64

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand does not fail on supported platforms; keep IDs
		// unique within the process anyway.
		return "proc-" + strconv.FormatInt(requestIDFallback.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a caller-supplied ID is acceptable for
// verbatim propagation: 1–64 characters from [0-9A-Za-z._-]. Anything
// else is replaced at the edge (it would need escaping in logs and
// headers, and unbounded IDs are a log-stuffing vector).
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// EndpointLabel normalizes a URL path to a bounded-cardinality endpoint
// label for metrics: fixed routes map to themselves, parameterized routes
// collapse the variable segment, and anything unknown becomes "other" so
// a path-scanning client cannot mint unbounded label values.
func EndpointLabel(path string) string {
	switch path {
	case "/v1/score", "/v1/label", "/v1/reload", "/v1/stats",
		"/healthz", "/metrics", "/v1/campaigns", "/v1/harden",
		"/v1/mine", "/v1/models", "/v1/results", "/v1/results/traffic":
		return path
	}
	seg, rest := splitSeg(path)
	switch seg {
	case "v1":
	default:
		return "other"
	}
	seg, rest = splitSeg(rest)
	switch seg {
	case "campaigns", "harden", "mine":
		if _, rest = splitSeg(rest); rest == "" {
			return "/v1/" + seg + "/{id}"
		}
	case "models":
		if _, rest = splitSeg(rest); rest == "" {
			return "/v1/models/{name}"
		}
	case "results":
		if _, rest = splitSeg(rest); rest == "" {
			return "/v1/results/{id}"
		}
		if seg2, rest2 := splitSeg(rest); seg2 == "replay" && rest2 == "" {
			return "/v1/results/{id}/replay"
		}
	}
	return "other"
}

// splitSeg splits "/a/b/c" into ("a", "/b/c").
func splitSeg(path string) (seg, rest string) {
	if len(path) == 0 || path[0] != '/' {
		return "", ""
	}
	path = path[1:]
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i], path[i:]
		}
	}
	return path, ""
}

// HTTP is the shared server/gateway middleware: per-endpoint request
// counts by status class, in-flight gauges, latency histograms, request-ID
// assignment/propagation, and structured access logs.
type HTTP struct {
	log      *slog.Logger
	endpoint func(*http.Request) string
	requests *CounterVec
	inflight *GaugeVec
	latency  *HistogramVec
}

// NewHTTP builds the middleware against a registry. endpoint maps a
// request to its metrics label; nil means EndpointLabel on the URL path.
// A nil logger discards access logs.
func NewHTTP(reg *Registry, log *slog.Logger, endpoint func(*http.Request) string) *HTTP {
	if endpoint == nil {
		endpoint = func(r *http.Request) string { return EndpointLabel(r.URL.Path) }
	}
	if log == nil {
		log = Discard()
	}
	return &HTTP{
		log:      log,
		endpoint: endpoint,
		requests: reg.CounterVec("malevade_http_requests_total",
			"HTTP requests served, by endpoint and status class.", "endpoint", "code"),
		inflight: reg.GaugeVec("malevade_http_in_flight_requests",
			"HTTP requests currently being served, by endpoint.", "endpoint"),
		latency: reg.HistogramVec("malevade_http_request_seconds",
			"HTTP request latency in seconds, by endpoint.", DefLatencyBuckets, "endpoint"),
	}
}

// Wrap instruments a handler. The request ID is resolved (propagated if
// valid, minted otherwise) before the handler runs, set on the response
// header immediately, and stored in the request context for inner layers
// (internal/client forwards it on outbound hops).
func (h *HTTP) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := h.endpoint(r)
		id := r.Header.Get(RequestIDHeader)
		if !ValidRequestID(id) {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(WithRequestID(r.Context(), id))
		g := h.inflight.With(ep)
		g.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		g.Add(-1)
		status := sw.Status()
		h.requests.With(ep, statusClass(status)).Inc()
		h.latency.With(ep).Observe(elapsed.Seconds())
		level := slog.LevelInfo
		if r.URL.Path == "/metrics" || r.URL.Path == "/healthz" {
			level = slog.LevelDebug // scrape traffic; visible at -log-level debug
		}
		h.log.LogAttrs(r.Context(), level, "http request",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", ep),
			slog.Int("status", status),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	})
}

// statusClass buckets a status code into "2xx".."5xx" (bounded label
// cardinality; exact codes live in the access log).
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// statusWriter records the status code and body bytes written.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

// Status returns the status code sent, defaulting to 200 when the handler
// never called WriteHeader.
func (w *statusWriter) Status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
