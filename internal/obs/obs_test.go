package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests.")
	c.Add(3)
	g := reg.Gauge("test_depth", "Depth.")
	g.Set(2.5)
	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests.\n# TYPE test_requests_total counter\ntest_requests_total 3\n",
		"# TYPE test_depth gauge\ntest_depth 2.5\n",
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 5.55",
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if problems := Lint([]byte(out)); len(problems) != 0 {
		t.Errorf("self-lint: %v", problems)
	}
}

func TestHistogramBucketBoundaryIsInclusive(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_hist_seconds", "H.", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	var b strings.Builder
	_ = reg.WriteText(&b)
	if !strings.Contains(b.String(), `test_hist_seconds_bucket{le="1"} 1`) {
		t.Fatalf("v==bound must land in that bucket:\n%s", b.String())
	}
}

func TestVecLabelsAndEscaping(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("test_by_model_total", "By model.", "model")
	v.With(`we"ird\name` + "\n").Inc()
	v.With("plain").Add(2)
	var b strings.Builder
	_ = reg.WriteText(&b)
	out := b.String()
	if !strings.Contains(out, `test_by_model_total{model="we\"ird\\name\n"} 1`) {
		t.Errorf("escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `test_by_model_total{model="plain"} 2`) {
		t.Errorf("plain series missing:\n%s", out)
	}
	if v.With("plain") != v.With("plain") {
		t.Error("With must return the same series")
	}
	if problems := Lint([]byte(out)); len(problems) != 0 {
		t.Errorf("self-lint: %v", problems)
	}
}

func TestGetOrCreateSharesState(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_shared_total", "S.").Inc()
	reg.Counter("test_shared_total", "S.").Inc()
	if got := reg.Counter("test_shared_total", "S.").Value(); got != 2 {
		t.Fatalf("shared counter = %d, want 2", got)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*Registry)
	}{
		{"counter without _total", func(r *Registry) { r.Counter("test_bad", "x") }},
		{"gauge ending _total", func(r *Registry) { r.Gauge("test_bad_total", "x") }},
		{"histogram ending _count", func(r *Registry) { r.Histogram("test_bad_count", "x", []float64{1}) }},
		{"empty buckets", func(r *Registry) { r.Histogram("test_h", "x", nil) }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("test_h", "x", []float64{2, 1}) }},
		{"bad name", func(r *Registry) { r.Gauge("test-bad", "x") }},
		{"le label", func(r *Registry) { r.CounterVec("test_x_total", "x", "le") }},
		{"shape change", func(r *Registry) {
			r.Counter("test_x_total", "x")
			r.Gauge("test_x_total", "x")
		}},
		{"wrong label count", func(r *Registry) {
			r.CounterVec("test_x_total", "x", "a").With("1", "2")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestFuncMetrics(t *testing.T) {
	reg := NewRegistry()
	n := 7.0
	reg.CounterFunc("test_cb_total", "CB.", func() float64 { return n })
	reg.GaugeFunc("test_cb_depth", "CB.", func() float64 { return 1.5 })
	reg.CounterVecFunc("test_cb_by_model_total", "CB.", "model",
		func() map[string]float64 { return map[string]float64{"b": 2, "a": 1} })
	var b strings.Builder
	_ = reg.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"test_cb_total 7\n",
		"test_cb_depth 1.5\n",
		"test_cb_by_model_total{model=\"a\"} 1\ntest_cb_by_model_total{model=\"b\"} 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Re-registration replaces the callback.
	reg.CounterFunc("test_cb_total", "CB.", func() float64 { return 9 })
	b.Reset()
	_ = reg.WriteText(&b)
	if !strings.Contains(b.String(), "test_cb_total 9\n") {
		t.Errorf("callback not replaced:\n%s", b.String())
	}
	if problems := Lint([]byte(b.String())); len(problems) != 0 {
		t.Errorf("self-lint: %v", problems)
	}
}

func TestConcurrentUseAndScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_conc_total", "C.")
	h := reg.Histogram("test_conc_seconds", "H.", []float64{0.001, 0.1, 1})
	v := reg.GaugeVec("test_conc_gauge", "G.", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				v.With("a").Add(1)
				v.With("b").Add(-1)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := reg.WriteText(&b); err != nil {
				t.Error(err)
				return
			}
			if problems := Lint([]byte(b.String())); len(problems) != 0 {
				t.Errorf("lint under churn: %v", problems)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8*500 {
		t.Fatalf("counter = %d, want %d", c.Value(), 8*500)
	}
	if h.Count() != 8*500 {
		t.Fatalf("histogram count = %d, want %d", h.Count(), 8*500)
	}
}

func TestGaugeAddAndNegatives(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_neg", "G.")
	g.Add(2)
	g.Add(-5)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %v, want -3", got)
	}
	var b strings.Builder
	_ = reg.WriteText(&b)
	if !strings.Contains(b.String(), "test_neg -3\n") {
		t.Fatalf("negative gauge render:\n%s", b.String())
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		3:           "3",
		2.5:         "2.5",
		math.Inf(1): "+Inf",
		1e15:        "1e+15",
		0.0001:      "0.0001",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_h_total", "H.").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q", ct)
	}
	post, err := srv.Client().Post(srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status %d, want 405", post.StatusCode)
	}
}
