package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses a Prometheus text-format (0.0.4) payload into samples,
// ignoring comment lines. It is strict about line shape: a malformed line
// is an error, not a skip — the linter and the stats CLI both want to
// know when the scrape is broken.
func ParseText(raw []byte) ([]Sample, error) {
	var samples []Sample
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		samples = append(samples, s)
	}
	return samples, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	// Metric name runs to '{' or whitespace.
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if s.Name == "" {
		return s, fmt.Errorf("missing metric name")
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		rest, err = parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
	}
	rest = strings.TrimLeft(rest, " \t")
	// Value is the first field; an optional timestamp may follow.
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return s, fmt.Errorf("want value [timestamp], got %q", rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {name="value",...} block and returns the
// remainder of the line.
func parseLabels(in string, out map[string]string) (string, error) {
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ' ' || in[i] == ',') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return in[i+1:], nil
		}
		start := i
		for i < len(in) && in[i] != '=' {
			i++
		}
		if i == len(in) {
			return "", fmt.Errorf("unterminated label block")
		}
		name := strings.TrimSpace(in[start:i])
		if !labelNameRe.MatchString(name) && name != "le" {
			return "", fmt.Errorf("bad label name %q", name)
		}
		i++ // '='
		if i >= len(in) || in[i] != '"' {
			return "", fmt.Errorf("label %s: value must be quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("label %s: bad escape \\%c", name, in[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return "", fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val.String()
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// Lint checks a text-format scrape for exposition and naming problems and
// returns one message per finding (empty means clean). Checks: every
// sample family has HELP and TYPE declared before its first sample; names
// and labels match the Prometheus charsets; counters end in _total and
// nothing else does; histograms expose consistent _bucket/_sum/_count
// triplets with ascending cumulative buckets ending at le="+Inf" equal to
// _count; no duplicate series; no NaN samples.
func Lint(raw []byte) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	helpOf := map[string]string{}
	typeOf := map[string]string{}
	sawSample := map[string]bool{}
	seen := map[string]bool{} // duplicate series detection

	// histogram reassembly: family -> series key (non-le labels) -> parts
	type histSeries struct {
		buckets map[float64]float64 // le -> cumulative count
		sum     *float64
		count   *float64
	}
	hists := map[string]map[string]*histSeries{}
	histAt := func(fam, key string) *histSeries {
		m := hists[fam]
		if m == nil {
			m = map[string]*histSeries{}
			hists[fam] = m
		}
		h := m[key]
		if h == nil {
			h = &histSeries{buckets: map[float64]float64{}}
			m[key] = h
		}
		return h
	}

	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimRight(line, "\r")
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 4 || fields[3] == "" {
					addf("line %d: HELP without text", lineNo)
					continue
				}
				name := fields[2]
				if _, dup := helpOf[name]; dup {
					addf("line %d: duplicate HELP for %s", lineNo, name)
				}
				helpOf[name] = fields[3]
			case "TYPE":
				if len(fields) < 4 {
					addf("line %d: malformed TYPE line", lineNo)
					continue
				}
				name, typ := fields[2], fields[3]
				if _, dup := typeOf[name]; dup {
					addf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if sawSample[name] {
					addf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				switch typ {
				case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
				default:
					addf("line %d: unknown TYPE %q for %s", lineNo, typ, name)
				}
				typeOf[name] = typ
			}
			continue
		}

		s, err := parseSample(line)
		if err != nil {
			addf("line %d: %v", lineNo, err)
			continue
		}
		if !metricNameRe.MatchString(s.Name) {
			addf("line %d: invalid metric name %q", lineNo, s.Name)
			continue
		}
		// Resolve the family: histogram components report under base name.
		fam, part := s.Name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suffix)
			if base != s.Name && typeOf[base] == typeHistogram {
				fam, part = base, suffix
				break
			}
		}
		sawSample[fam] = true
		typ, ok := typeOf[fam]
		if !ok {
			addf("line %d: sample %s has no TYPE declaration", lineNo, s.Name)
		}
		if _, ok := helpOf[fam]; !ok {
			addf("line %d: sample %s has no HELP declaration", lineNo, s.Name)
		}
		switch typ {
		case typeCounter:
			if !strings.HasSuffix(fam, "_total") {
				addf("counter %s should end in _total", fam)
			}
			if s.Value < 0 {
				addf("line %d: counter %s is negative", lineNo, s.Name)
			}
		case typeGauge:
			if strings.HasSuffix(fam, "_total") {
				addf("gauge %s should not end in _total", fam)
			}
		}
		if math.IsNaN(s.Value) {
			addf("line %d: sample %s is NaN", lineNo, s.Name)
		}
		key := seriesKey(s.Name, s.Labels)
		if seen[key] {
			addf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true

		if typ == typeHistogram {
			nonLE := map[string]string{}
			var le string
			for k, v := range s.Labels {
				if k == "le" {
					le = v
				} else {
					nonLE[k] = v
				}
			}
			h := histAt(fam, seriesKey("", nonLE))
			switch part {
			case "_bucket":
				if le == "" {
					addf("line %d: %s_bucket without le label", lineNo, fam)
					continue
				}
				bound, err := parseValue(le)
				if err != nil {
					addf("line %d: %s_bucket bad le %q", lineNo, fam, le)
					continue
				}
				h.buckets[bound] = s.Value
			case "_sum":
				v := s.Value
				h.sum = &v
			case "_count":
				v := s.Value
				h.count = &v
			default:
				addf("line %d: histogram %s has bare sample %s", lineNo, fam, s.Name)
			}
		}
	}

	// Histogram structural checks.
	famNames := make([]string, 0, len(hists))
	for fam := range hists {
		famNames = append(famNames, fam)
	}
	sort.Strings(famNames)
	for _, fam := range famNames {
		keys := make([]string, 0, len(hists[fam]))
		for k := range hists[fam] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			h := hists[fam][key]
			where := fam + key
			if h.sum == nil {
				addf("histogram %s missing _sum", where)
			}
			if h.count == nil {
				addf("histogram %s missing _count", where)
			}
			bounds := make([]float64, 0, len(h.buckets))
			for b := range h.buckets {
				bounds = append(bounds, b)
			}
			sort.Float64s(bounds)
			if len(bounds) == 0 || !math.IsInf(bounds[len(bounds)-1], 1) {
				addf("histogram %s missing le=\"+Inf\" bucket", where)
				continue
			}
			prev := -1.0
			for _, b := range bounds {
				if h.buckets[b] < prev {
					addf("histogram %s buckets not cumulative at le=%s", where, formatValue(b))
				}
				prev = h.buckets[b]
			}
			if h.count != nil && h.buckets[math.Inf(1)] != *h.count {
				addf("histogram %s le=\"+Inf\" (%s) != _count (%s)", where,
					formatValue(h.buckets[math.Inf(1)]), formatValue(*h.count))
			}
		}
	}
	return problems
}

// seriesKey builds a stable identity for duplicate detection: name plus
// sorted labels.
func seriesKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}
