package obs

import (
	"strings"
	"testing"
)

const cleanScrape = `# HELP app_requests_total Requests.
# TYPE app_requests_total counter
app_requests_total{endpoint="/v1/score",code="2xx"} 10
app_requests_total{endpoint="/v1/score",code="5xx"} 1
# HELP app_depth Queue depth.
# TYPE app_depth gauge
app_depth 3
# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 4
app_latency_seconds_bucket{le="1"} 9
app_latency_seconds_bucket{le="+Inf"} 11
app_latency_seconds_sum 12.5
app_latency_seconds_count 11
`

func TestLintClean(t *testing.T) {
	if problems := Lint([]byte(cleanScrape)); len(problems) != 0 {
		t.Fatalf("clean scrape flagged: %v", problems)
	}
}

func TestParseText(t *testing.T) {
	samples, err := ParseText([]byte(cleanScrape))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 8 {
		t.Fatalf("got %d samples, want 8", len(samples))
	}
	if samples[0].Name != "app_requests_total" ||
		samples[0].Labels["endpoint"] != "/v1/score" ||
		samples[0].Value != 10 {
		t.Fatalf("bad first sample: %+v", samples[0])
	}
}

func TestParseTextEscapes(t *testing.T) {
	samples, err := ParseText([]byte(`m_total{k="a\"b\\c\nd"} 1` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := samples[0].Labels["k"]; got != "a\"b\\c\nd" {
		t.Fatalf("unescape wrong: %q", got)
	}
}

func TestLintFindsProblems(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of at least one problem
	}{
		{"no type", "app_x_total 1\n", "no TYPE"},
		{"no help", "# TYPE app_x_total counter\napp_x_total 1\n", "no HELP"},
		{"counter without _total",
			"# HELP app_x X.\n# TYPE app_x counter\napp_x 1\n",
			"should end in _total"},
		{"gauge with _total",
			"# HELP app_x_total X.\n# TYPE app_x_total gauge\napp_x_total 1\n",
			"should not end in _total"},
		{"negative counter",
			"# HELP app_x_total X.\n# TYPE app_x_total counter\napp_x_total -1\n",
			"negative"},
		{"duplicate series",
			"# HELP app_x_total X.\n# TYPE app_x_total counter\napp_x_total 1\napp_x_total 2\n",
			"duplicate series"},
		{"nan sample",
			"# HELP app_x X.\n# TYPE app_x gauge\napp_x NaN\n",
			"NaN"},
		{"type after sample",
			"# HELP app_x X.\napp_x 1\n# TYPE app_x gauge\n",
			"after its samples"},
		{"malformed line",
			"# HELP app_x X.\n# TYPE app_x gauge\napp_x one\n",
			"bad value"},
		{"hist missing inf", `# HELP h_s H.
# TYPE h_s histogram
h_s_bucket{le="1"} 1
h_s_sum 1
h_s_count 1
`, "+Inf"},
		{"hist non-cumulative", `# HELP h_s H.
# TYPE h_s histogram
h_s_bucket{le="1"} 5
h_s_bucket{le="2"} 3
h_s_bucket{le="+Inf"} 5
h_s_sum 1
h_s_count 5
`, "not cumulative"},
		{"hist count mismatch", `# HELP h_s H.
# TYPE h_s histogram
h_s_bucket{le="+Inf"} 5
h_s_sum 1
h_s_count 4
`, "_count"},
		{"hist missing sum", `# HELP h_s H.
# TYPE h_s histogram
h_s_bucket{le="+Inf"} 1
h_s_count 1
`, "missing _sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := Lint([]byte(tc.in))
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Fatalf("no problem containing %q, got %v", tc.want, problems)
		})
	}
}

func TestLintHistogramPerSeries(t *testing.T) {
	// Two labeled series of one histogram family are checked independently.
	in := `# HELP h_s H.
# TYPE h_s histogram
h_s_bucket{ep="a",le="1"} 1
h_s_bucket{ep="a",le="+Inf"} 2
h_s_sum{ep="a"} 1.5
h_s_count{ep="a"} 2
h_s_bucket{ep="b",le="1"} 1
h_s_bucket{ep="b",le="+Inf"} 1
h_s_sum{ep="b"} 0.5
h_s_count{ep="b"} 1
`
	if problems := Lint([]byte(in)); len(problems) != 0 {
		t.Fatalf("per-series histograms flagged: %v", problems)
	}
}
