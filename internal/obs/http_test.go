package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestEndpointLabel(t *testing.T) {
	cases := map[string]string{
		"/v1/score":                "/v1/score",
		"/v1/stats":                "/v1/stats",
		"/metrics":                 "/metrics",
		"/healthz":                 "/healthz",
		"/v1/campaigns":            "/v1/campaigns",
		"/v1/campaigns/abc123":     "/v1/campaigns/{id}",
		"/v1/harden/xyz":           "/v1/harden/{id}",
		"/v1/mine/7":               "/v1/mine/{id}",
		"/v1/models/spam":          "/v1/models/{name}",
		"/v1/results":              "/v1/results",
		"/v1/results/traffic":      "/v1/results/traffic",
		"/v1/results/abc":          "/v1/results/{id}",
		"/v1/results/abc/replay":   "/v1/results/{id}/replay",
		"/v1/results/abc/nope":     "other",
		"/v1/campaigns/a/b":        "other",
		"/etc/passwd":              "other",
		"/v2/score":                "other",
		"":                         "other",
		"/v1/models/spam/versions": "other",
	}
	for in, want := range cases {
		if got := EndpointLabel(in); got != want {
			t.Errorf("EndpointLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestValidRequestID(t *testing.T) {
	ok := []string{"a", "abc-DEF_1.2", strings.Repeat("x", 64)}
	bad := []string{"", strings.Repeat("x", 65), "has space", "nl\n", `q"uote`, "ünïcode"}
	for _, id := range ok {
		if !ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = false, want true", id)
		}
	}
	for _, id := range bad {
		if ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = true, want false", id)
		}
	}
}

func TestNewRequestIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if !ValidRequestID(id) {
			t.Fatalf("generated invalid id %q", id)
		}
		if len(id) != 16 {
			t.Fatalf("id %q length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestMiddlewareMetricsAndRequestID(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	var seenCtxID string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenCtxID = RequestID(r.Context())
		if r.URL.Path == "/v1/score" {
			w.Write([]byte("ok"))
			return
		}
		w.WriteHeader(http.StatusNotFound)
	})
	h := NewHTTP(reg, logger, nil).Wrap(inner)

	// No inbound ID: one is minted, set on the response, stored in ctx.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/score", nil))
	minted := rec.Header().Get(RequestIDHeader)
	if !ValidRequestID(minted) {
		t.Fatalf("minted id %q invalid", minted)
	}
	if seenCtxID != minted {
		t.Fatalf("ctx id %q != header id %q", seenCtxID, minted)
	}

	// Valid inbound ID: propagated verbatim.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/score", nil)
	req.Header.Set(RequestIDHeader, "upstream-id-1")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "upstream-id-1" {
		t.Fatalf("inbound id not propagated, got %q", got)
	}

	// Invalid inbound ID: replaced.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/v1/score", nil)
	req.Header.Set(RequestIDHeader, "bad id with spaces")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); !ValidRequestID(got) || got == "bad id with spaces" {
		t.Fatalf("invalid inbound id not replaced, got %q", got)
	}

	// 404 path counts under 4xx and endpoint "other".
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))

	var b strings.Builder
	_ = reg.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`malevade_http_requests_total{endpoint="/v1/score",code="2xx"} 3`,
		`malevade_http_requests_total{endpoint="other",code="4xx"} 1`,
		`malevade_http_in_flight_requests{endpoint="/v1/score"} 0`,
		`malevade_http_request_seconds_count{endpoint="/v1/score"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if problems := Lint([]byte(out)); len(problems) != 0 {
		t.Errorf("self-lint: %v", problems)
	}

	// Access log lines are JSON with request_id/status/endpoint fields.
	dec := json.NewDecoder(&logBuf)
	var sawScore bool
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("access log not JSON: %v", err)
		}
		if rec["msg"] != "http request" {
			continue
		}
		if rec["endpoint"] == "/v1/score" {
			sawScore = true
			if rec["request_id"] == "" || rec["status"] != float64(200) {
				t.Errorf("bad access log record: %v", rec)
			}
		}
	}
	if !sawScore {
		t.Error("no access log line for /v1/score")
	}
}

func TestMiddlewareInFlightGauge(t *testing.T) {
	reg := NewRegistry()
	entered := make(chan struct{})
	release := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	})
	h := NewHTTP(reg, nil, nil).Wrap(inner)
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/score", nil))
	}()
	<-entered
	var b strings.Builder
	_ = reg.WriteText(&b)
	if !strings.Contains(b.String(), `malevade_http_in_flight_requests{endpoint="/v1/score"} 1`) {
		t.Errorf("in-flight gauge not 1 during request:\n%s", b.String())
	}
	close(release)
	<-done
	b.Reset()
	_ = reg.WriteText(&b)
	if !strings.Contains(b.String(), `malevade_http_in_flight_requests{endpoint="/v1/score"} 0`) {
		t.Errorf("in-flight gauge not back to 0:\n%s", b.String())
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Fatalf("bad record: %v", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept")
	if strings.Contains(buf.String(), "dropped") || !strings.Contains(buf.String(), "kept") {
		t.Fatalf("level filter broken: %q", buf.String())
	}

	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Error("want error for bad level")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("want error for bad format")
	}
}

func TestDebugHandlerServesPprofIndex(t *testing.T) {
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("pprof index status %d", res.StatusCode)
	}
}
