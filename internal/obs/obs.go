// Package obs is the stdlib-only observability layer shared by every
// malevade serving tier: a concurrency-safe metrics registry (counters,
// gauges and fixed-bucket histograms, settable or callback-backed) with
// Prometheus text-format exposition, HTTP middleware recording
// per-endpoint request counts, in-flight gauges, latency histograms and
// per-request IDs (http.go), structured-logging construction over
// log/slog (log.go), an exposition-format and naming-convention linter
// shared with tools/metriclint (lint.go), and the optional pprof debug
// handler (debug.go).
//
// The registry speaks the Prometheus text exposition format (version
// 0.0.4) without importing any client library — the repository is
// stdlib-only by constraint, and the daemons need exactly counters,
// gauges and histograms. Families are get-or-create by name (a second
// request for the same name returns the same family, so many scoring
// engines can share one cumulative histogram), metric reads are lock-free
// atomics, and scrapes render families and series in sorted order so
// consecutive scrapes are textually comparable.
//
// Naming conventions are enforced at registration time, not scrape time:
// counter families must end in _total, nothing else may, and histogram
// base names must leave the _bucket/_sum/_count suffixes free. A registry
// that builds is therefore lint-clean by construction; Lint guards the
// wire format end to end anyway.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Family types for the TYPE exposition line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// DefLatencyBuckets are the default request-latency histogram bounds,
// spanning 100µs to 10s — wide enough for a coalesced binary-frame scoring
// call on one end and a campaign submission on the other.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must not be negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is unusable;
// obtain gauges from a Registry.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Value reads the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets. The zero
// value is unusable; obtain histograms from a Registry.
type Histogram struct {
	bounds  []float64      // upper bounds, strictly increasing; +Inf implicit
	counts  []atomic.Int64 // len(bounds)+1, last slot is the +Inf overflow
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= le
	h.counts[i].Add(1)
	addFloat(&h.sumBits, v)
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// addFloat CAS-adds delta onto a float64 stored as bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// series is one labeled instance within a family.
type series struct {
	labels []string // label values, parallel to family.labels
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric family: a fixed type, label names, and either
// stored series or a scrape-time callback.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series
	fn     func() float64            // callback families (labels empty)
	vecFn  func() map[string]float64 // callback families (one label)
}

const labelSep = "\x00"

// with returns (creating if needed) the series for the given label values.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labels: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		s.h = &Histogram{
			bounds: f.buckets,
			counts: make([]atomic.Int64, len(f.buckets)+1),
		}
	}
	f.series[key] = s
	return s
}

// Registry is a concurrency-safe collection of metric families with
// Prometheus text exposition. Create with NewRegistry; every tier (daemon,
// gateway) owns one and serves it at GET /metrics.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family gets or creates the named family, verifying that a pre-existing
// family was registered with the same shape — a mismatch is a programming
// error and panics, exactly once, at wiring time.
func (r *Registry) family(name, help, typ string, labels []string, buckets []float64) *family {
	if !metricNameRe.MatchString(name) {
		panic("obs: invalid metric name " + name)
	}
	switch typ {
	case typeCounter:
		if !strings.HasSuffix(name, "_total") {
			panic("obs: counter " + name + " must end in _total")
		}
	case typeGauge, typeHistogram:
		for _, suffix := range []string{"_total", "_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				panic("obs: " + typ + " " + name + " must not end in " + suffix)
			}
		}
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l) || l == "le" {
			panic("obs: invalid label name " + l + " on " + name)
		}
	}
	if typ == typeHistogram {
		if len(buckets) == 0 {
			panic("obs: histogram " + name + " needs buckets")
		}
		for i, b := range buckets {
			if math.IsNaN(b) || math.IsInf(b, 0) || (i > 0 && b <= buckets[i-1]) {
				panic("obs: histogram " + name + " buckets must be finite and strictly increasing")
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.fams[name]; f != nil {
		if f.typ != typ || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic("obs: metric " + name + " re-registered with a different shape")
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

// Counter returns the named unlabeled counter, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, typeCounter, nil, nil).with(nil).c
}

// Gauge returns the named unlabeled gauge, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, typeGauge, nil, nil).with(nil).g
}

// Histogram returns the named unlabeled histogram, creating it if needed.
// buckets are the upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, typeHistogram, nil, buckets).with(nil).h
}

// CounterVec is a family of counters sharing one name, split by label
// values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it if
// needed.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values).c }

// CounterVec returns the named labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, typeCounter, labels, nil)}
}

// GaugeVec is a family of gauges sharing one name, split by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values, creating it if needed.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values).g }

// GaugeVec returns the named labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, typeGauge, labels, nil)}
}

// HistogramVec is a family of histograms sharing one name and bucket
// layout, split by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values, creating it if
// needed.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values).h }

// HistogramVec returns the named labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, typeHistogram, labels, buckets)}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotone counters another layer already maintains (engine
// batch totals, store byte counts). Re-registering replaces the callback
// (a hot-swapped layer re-points its metric).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, typeCounter, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
// Re-registering replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, typeGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterVecFunc registers a one-label counter family whose series are
// read from fn at scrape time (e.g. per-model request counts the registry
// already tracks). Re-registering replaces the callback.
func (r *Registry) CounterVecFunc(name, help, label string, fn func() map[string]float64) {
	f := r.family(name, help, typeCounter, []string{label}, nil)
	f.mu.Lock()
	f.vecFn = fn
	f.mu.Unlock()
}

// GaugeVecFunc registers a one-label gauge family whose series are read
// from fn at scrape time. Re-registering replaces the callback.
func (r *Registry) GaugeVecFunc(name, help, label string, fn func() map[string]float64) {
	f := r.family(name, help, typeGauge, []string{label}, nil)
	f.mu.Lock()
	f.vecFn = fn
	f.mu.Unlock()
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4), families and series sorted by name so scrapes are
// deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()
	var buf strings.Builder
	for _, f := range fams {
		f.render(&buf)
	}
	_, err := io.WriteString(w, buf.String())
	return err
}

// render writes one family's HELP/TYPE header and every series.
func (f *family) render(buf *strings.Builder) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	fmt.Fprintf(buf, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(buf, "# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		fmt.Fprintf(buf, "%s %s\n", f.name, formatValue(f.fn()))
		return
	}
	if f.vecFn != nil {
		vals := f.vecFn()
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(buf, "%s%s %s\n", f.name,
				renderLabels(f.labels, []string{k}, "", 0), formatValue(vals[k]))
		}
		return
	}
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := f.series[k]
		switch f.typ {
		case typeCounter:
			fmt.Fprintf(buf, "%s%s %d\n", f.name,
				renderLabels(f.labels, s.labels, "", 0), s.c.Value())
		case typeGauge:
			fmt.Fprintf(buf, "%s%s %s\n", f.name,
				renderLabels(f.labels, s.labels, "", 0), formatValue(s.g.Value()))
		case typeHistogram:
			var cum int64
			for i, bound := range s.h.bounds {
				cum += s.h.counts[i].Load()
				fmt.Fprintf(buf, "%s_bucket%s %d\n", f.name,
					renderLabels(f.labels, s.labels, "le", bound), cum)
			}
			cum += s.h.counts[len(s.h.bounds)].Load()
			fmt.Fprintf(buf, "%s_bucket%s %d\n", f.name,
				renderLabels(f.labels, s.labels, "le", math.Inf(1)), cum)
			fmt.Fprintf(buf, "%s_sum%s %s\n", f.name,
				renderLabels(f.labels, s.labels, "", 0), formatValue(s.h.Sum()))
			fmt.Fprintf(buf, "%s_count%s %d\n", f.name,
				renderLabels(f.labels, s.labels, "", 0), cum)
		}
	}
}

// renderLabels renders a {name="value",...} block, appending the special
// "le" histogram label when leName is non-empty. Empty label sets render
// as nothing.
func renderLabels(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatValue(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// formatValue renders a sample value: integral floats as integers (the
// common case for counters and counts), +Inf as Prometheus spells it,
// everything else shortest-round-trip.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ContentType is the Prometheus text exposition content type /metrics
// responds with.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_ = r.WriteText(w)
	})
}
