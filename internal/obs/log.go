package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. level is one of
// debug|info|warn|error (empty means info); format is text|json (empty
// means text). Both daemons expose these verbatim as -log-level and
// -log-format.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
	return slog.New(h), nil
}

// Discard returns a logger that drops every record — the default for
// layers whose Options carry no Logger, so instrumented code never
// nil-checks.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }

// Or returns l, or a discarding logger when l is nil.
func Or(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Discard()
	}
	return l
}
