package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"malevade/internal/registry"
	"malevade/internal/rng"
	"malevade/internal/tensor"
	"malevade/internal/wire"
)

func getJSON(t *testing.T, s *Server, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: undecodable body: %v", path, err)
		}
	}
	return w
}

func wantErrorCode(t *testing.T, w *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status %d, want %d (body %s)", w.Code, status, w.Body)
	}
	var env wire.Envelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error == "" {
		t.Fatalf("error body not an envelope: %s", w.Body)
	}
	if env.Code != code {
		t.Fatalf("envelope code %q, want %q (body %s)", env.Code, code, w.Body)
	}
}

// TestModelsAPILifecycle drives the registry end to end over the HTTP
// surface: register two named detectors (one defended), address them from
// scoring requests, promote, GC, delete — with every refusal carrying its
// documented taxonomy code.
func TestModelsAPILifecycle(t *testing.T) {
	dir := t.TempDir()
	defaultPath, _ := saveTestNet(t, dir, "default.gob", []int{3, 8, 2}, 7)
	pathA, netA := saveTestNet(t, dir, "a.gob", []int{3, 8, 2}, 21)
	pathB, netB := saveTestNet(t, dir, "b.gob", []int{3, 8, 2}, 22)
	s, err := New(Options{ModelPath: defaultPath, RegistryDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Empty registry lists empty.
	var list ModelListResponse
	if w := getJSON(t, s, "/v1/models", &list); w.Code != http.StatusOK || len(list.Models) != 0 {
		t.Fatalf("empty list: %d %s", w.Code, w.Body)
	}

	// Register a bare detector and a squeeze-hardened variant of it.
	w := postJSON(t, s, "/v1/models", fmt.Sprintf(`{"name":"bare","path":%q}`, pathA))
	if w.Code != http.StatusOK {
		t.Fatalf("register bare: %d %s", w.Code, w.Body)
	}
	var mr ModelResponse
	if err := json.Unmarshal(w.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Model.Live != 1 || mr.Model.InDim != 3 {
		t.Fatalf("bare after register: %+v", mr.Model)
	}
	w = postJSON(t, s, "/v1/models", fmt.Sprintf(
		`{"name":"hard","path":%q,"defenses":[{"kind":"squeeze","bits":3,"threshold":0.2}]}`, pathA))
	if w.Code != http.StatusOK {
		t.Fatalf("register hard: %d %s", w.Code, w.Body)
	}

	// Model-addressed scoring answers with the named model's generation
	// and verdicts; the default path is untouched.
	x := tensor.New(4, 3)
	r := rng.New(5)
	for i := range x.Data {
		x.Data[i] = r.Float64()
	}
	rows := make([][]float64, x.Rows)
	for i := range rows {
		rows[i] = x.Row(i)
	}
	rowsJSON, _ := json.Marshal(rows)
	w = postJSON(t, s, "/v1/score", fmt.Sprintf(`{"model":"bare","rows":%s}`, rowsJSON))
	if w.Code != http.StatusOK {
		t.Fatalf("model-addressed score: %d %s", w.Code, w.Body)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	wantA := expectedResults(netA, x, 1)
	for i, got := range sr.Results {
		if got != wantA[i] {
			t.Fatalf("bare row %d: %+v, want %+v", i, got, wantA[i])
		}
	}
	// The defended variant flags or saturates through its chain — assert
	// it answers and is addressed independently.
	w = postJSON(t, s, "/v1/label", fmt.Sprintf(`{"model":"hard","rows":%s}`, rowsJSON))
	if w.Code != http.StatusOK {
		t.Fatalf("model-addressed label: %d %s", w.Code, w.Body)
	}

	// Unknown model: 404 with the unknown_model refinement code.
	w = postJSON(t, s, "/v1/score", fmt.Sprintf(`{"model":"ghost","rows":%s}`, rowsJSON))
	wantErrorCode(t, w, http.StatusNotFound, wire.CodeUnknownModel)
	w = getJSON(t, s, "/v1/models/ghost", nil)
	wantErrorCode(t, w, http.StatusNotFound, wire.CodeUnknownModel)

	// Stage a second bare version without promoting, then promote it.
	w = postJSON(t, s, "/v1/models", fmt.Sprintf(`{"name":"bare","path":%q}`, pathB))
	if w.Code != http.StatusOK {
		t.Fatalf("stage bare v2: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Model.Live != 1 || len(mr.Model.Versions) != 2 {
		t.Fatalf("staged v2 should not be live: %+v", mr.Model)
	}
	w = postJSON(t, s, "/v1/models/bare", `{"action":"promote","version":2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("promote: %d %s", w.Code, w.Body)
	}
	w = postJSON(t, s, "/v1/score", fmt.Sprintf(`{"model":"bare","rows":%s}`, rowsJSON))
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	wantB := expectedResults(netB, x, 1)
	for i, got := range sr.Results {
		if got != wantB[i] {
			t.Fatalf("bare v2 row %d: %+v, want %+v", i, got, wantB[i])
		}
	}

	// Promoting a version that does not exist: 409 version_conflict.
	w = postJSON(t, s, "/v1/models/bare", `{"action":"promote","version":9}`)
	wantErrorCode(t, w, http.StatusConflict, wire.CodeVersionConflict)
	// Unknown actions and non-positive versions are plain 400s.
	w = postJSON(t, s, "/v1/models/bare", `{"action":"explode"}`)
	wantErrorCode(t, w, http.StatusBadRequest, wire.CodeBadRequest)
	w = postJSON(t, s, "/v1/models/bare", `{"action":"promote"}`)
	wantErrorCode(t, w, http.StatusBadRequest, wire.CodeBadRequest)

	// GC drops the unpinned non-live v1.
	w = postJSON(t, s, "/v1/models/bare", `{"action":"gc"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("gc: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Removed != 1 || len(mr.Model.Versions) != 1 {
		t.Fatalf("gc: %+v", mr)
	}

	// Campaigns addressed at an unknown registry model refuse at submit.
	w = postJSON(t, s, "/v1/campaigns",
		`{"attack":{"kind":"jsma","theta":0.1,"gamma":0.02},"target_model":"ghost","profile":"small"}`)
	wantErrorCode(t, w, http.StatusNotFound, wire.CodeUnknownModel)
	// target_model and target_url together fail validation.
	w = postJSON(t, s, "/v1/campaigns",
		`{"attack":{"kind":"jsma","theta":0.1,"gamma":0.02},"target_model":"bare","target_url":"http://x","profile":"small"}`)
	wantErrorCode(t, w, http.StatusUnprocessableEntity, wire.CodeInvalidSpec)

	// Stats carry the new uptime and per-model counters.
	var stats StatsResponse
	if w := getJSON(t, s, "/v1/stats", &stats); w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	if stats.UptimeSeconds <= 0 {
		t.Fatalf("uptime_seconds = %v, want > 0", stats.UptimeSeconds)
	}
	// bare served two model-addressed scores, hard one label.
	if stats.ModelRequests["bare"] != 2 || stats.ModelRequests["hard"] != 1 {
		t.Fatalf("model_requests = %v, want bare:2 hard:1", stats.ModelRequests)
	}
	var h HealthResponse
	getJSON(t, s, "/healthz", &h)
	if h.Models != 2 {
		t.Fatalf("healthz models = %d, want 2", h.Models)
	}
	// The health payload advertises the sorted model names — what a fleet
	// gateway's probe routes on.
	if len(h.ModelNames) != 2 || h.ModelNames[0] != "bare" || h.ModelNames[1] != "hard" {
		t.Fatalf("healthz model_names = %v, want [bare hard]", h.ModelNames)
	}

	// Delete removes the model and its addressing.
	req := httptest.NewRequest(http.MethodDelete, "/v1/models/hard", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body)
	}
	w = postJSON(t, s, "/v1/label", fmt.Sprintf(`{"model":"hard","rows":%s}`, rowsJSON))
	wantErrorCode(t, w, http.StatusNotFound, wire.CodeUnknownModel)
}

// TestModelsAPICapacityAndNoRegistry covers the registry_full refusal and
// the behavior of a daemon started without -registry.
func TestModelsAPICapacityAndNoRegistry(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveTestNet(t, dir, "m.gob", []int{3, 8, 2}, 7)

	s, err := New(Options{ModelPath: path, RegistryDir: t.TempDir(), RegistryMaxModels: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if w := postJSON(t, s, "/v1/models", fmt.Sprintf(`{"name":"one","path":%q}`, path)); w.Code != http.StatusOK {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	w := postJSON(t, s, "/v1/models", fmt.Sprintf(`{"name":"two","path":%q}`, path))
	wantErrorCode(t, w, http.StatusInsufficientStorage, wire.CodeRegistryFull)
	// Unloadable files and invalid names are the client's submission
	// problem (422), not a capacity refusal.
	w = postJSON(t, s, "/v1/models", `{"name":"one","path":"/nonexistent.gob"}`)
	wantErrorCode(t, w, http.StatusUnprocessableEntity, wire.CodeInvalidSpec)
	w = postJSON(t, s, "/v1/models", fmt.Sprintf(`{"name":"../up","path":%q}`, path))
	wantErrorCode(t, w, http.StatusUnprocessableEntity, wire.CodeInvalidSpec)

	// Without a registry: reads answer empty, mutations and model
	// addressing refuse with 422.
	bare, _ := newTestServer(t, Options{})
	var list ModelListResponse
	if w := getJSON(t, bare, "/v1/models", &list); w.Code != http.StatusOK || len(list.Models) != 0 {
		t.Fatalf("no-registry list: %d %s", w.Code, w.Body)
	}
	w = postJSON(t, bare, "/v1/models", fmt.Sprintf(`{"name":"x","path":%q}`, path))
	wantErrorCode(t, w, http.StatusUnprocessableEntity, wire.CodeInvalidSpec)
	w = postJSON(t, bare, "/v1/score", `{"model":"x","rows":[[0.1,0.2,0.3]]}`)
	wantErrorCode(t, w, http.StatusUnprocessableEntity, wire.CodeInvalidSpec)
}

// TestDefaultSlotGenerationFollowsRegistry: a registry dir populated by a
// standalone OpenRegistry carries persisted generations; a daemon started
// on it must number its default slot past them, keeping generations
// unique across the whole process.
func TestDefaultSlotGenerationFollowsRegistry(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveTestNet(t, dir, "m.gob", []int{3, 8, 2}, 7)
	regDir := t.TempDir()
	reg, err := registry.Open(registry.Options{Dir: regDir})
	if err != nil {
		t.Fatal(err)
	}
	info, err := reg.Register(registry.RegisterRequest{Name: "seeded", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if info.Generation != 1 {
		t.Fatalf("standalone registry assigned generation %d, want 1", info.Generation)
	}

	s, err := New(Options{ModelPath: path, RegistryDir: regDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.ModelVersion(); got <= info.Generation {
		t.Fatalf("default slot generation %d does not clear the registry's persisted %d", got, info.Generation)
	}
	seeded, err := s.Registry().Get("seeded")
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Generation != info.Generation {
		t.Fatalf("restart reassigned the persisted generation: %d -> %d", info.Generation, seeded.Generation)
	}
}

// TestRegistryPromoteHammerHTTP is the registry's wire-level promote
// acceptance test, mirroring TestReloadHammerScoreConsistency: real HTTP
// traffic addressing one named model while its live version is repeatedly
// promoted between two registered versions. Every response must arrive and
// be computed wholly by one version — the version the response's
// generation maps to must match every row bit-for-bit. Under -race this
// also proves the promotion swap/drain path is data-race free.
func TestRegistryPromoteHammerHTTP(t *testing.T) {
	dir := t.TempDir()
	defaultPath, _ := saveTestNet(t, dir, "default.gob", []int{8, 16, 2}, 5)
	pathA, netA := saveTestNet(t, dir, "a.gob", []int{8, 16, 2}, 1)
	pathB, netB := saveTestNet(t, dir, "b.gob", []int{8, 16, 2}, 2)
	s, err := New(Options{ModelPath: defaultPath, RegistryDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := s.Registry()
	if _, err := reg.Register(registry.RegisterRequest{Name: "m", Path: pathA}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(registry.RegisterRequest{Name: "m", Path: pathB}); err != nil {
		t.Fatal(err)
	}

	const rows = 5
	r := rng.New(42)
	x := tensor.New(rows, 8)
	for i := range x.Data {
		x.Data[i] = r.Float64()
	}
	batch := make([][]float64, rows)
	for i := range batch {
		batch[i] = x.Row(i)
	}
	rowsJSON, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(fmt.Sprintf(`{"model":"m","rows":%s}`, rowsJSON))

	wantA := expectedResults(netA, x, 1)
	wantB := expectedResults(netB, x, 1)
	for i := range wantA {
		if wantA[i] == wantB[i] {
			t.Fatalf("row %d: versions agree exactly; hammer can't detect torn promotions", i)
		}
	}
	// Generations alternate deterministically: the default slot took
	// generation 1, registering version 1 promoted it at generation 2, and
	// the promote loop below alternates version 2, 1, 2, ... from
	// generation 3 on — so even generations serve version 1 (model A) and
	// odd generations ≥ 3 serve version 2 (model B).
	wantFor := func(generation int64) []ScoreResult {
		if generation < 2 {
			return nil
		}
		if generation%2 == 0 {
			return wantA
		}
		return wantB
	}

	ts := httptest.NewServer(s)
	defer ts.Close()

	const clients = 8
	var (
		responses atomic.Int64
		stop      atomic.Bool
		wg        sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("request dropped: %v", err)
					return
				}
				var sr ScoreResponse
				decErr := json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d during promote hammer", resp.StatusCode)
					return
				}
				if decErr != nil {
					t.Errorf("decode: %v", decErr)
					return
				}
				want := wantFor(sr.ModelVersion)
				if want == nil {
					t.Errorf("response generation %d maps to no promoted version", sr.ModelVersion)
					return
				}
				if len(sr.Results) != rows {
					t.Errorf("got %d results, want %d", len(sr.Results), rows)
					return
				}
				for i, got := range sr.Results {
					if got != want[i] {
						t.Errorf("generation %d row %d: got %+v, want %+v — response mixes versions",
							sr.ModelVersion, i, got, want[i])
						return
					}
				}
				responses.Add(1)
			}
		}()
	}

	const minResponses = 150
	const maxPromotes = 5000
	promotes := 0
	for ; promotes < maxPromotes && (responses.Load() < minResponses || promotes < 30); promotes++ {
		version := 2 - promotes%2 // 2, 1, 2, 1, ...
		pinfo, err := reg.Promote("m", version)
		if err != nil {
			t.Fatalf("promote %d: %v", promotes, err)
		}
		if pinfo.Generation != int64(promotes+3) {
			t.Fatalf("promote %d: generation %d, want %d", promotes, pinfo.Generation, promotes+3)
		}
	}
	stop.Store(true)
	wg.Wait()
	if n := responses.Load(); n == 0 {
		t.Fatal("no responses completed during the hammer")
	} else {
		t.Logf("%d consistent responses across %d live promotions", n, promotes)
	}
}
