package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"malevade/internal/harden"
	"malevade/internal/registry"
	"malevade/internal/wire"
)

// The hardening API exposes the closed-loop controller (internal/harden)
// over the daemon:
//
//	POST   /v1/harden       submit a hardening spec    → 202 + snapshot
//	GET    /v1/harden       list job summaries         → 200
//	GET    /v1/harden/{id}  status + per-round metrics → 200
//	DELETE /v1/harden/{id}  cancel via context         → 202 + snapshot
//
// The controller only exists when the daemon has a model registry —
// hardening retrains and promotes named, durable models — so every handler
// first refuses registry-less daemons with the same 422 the scoring path
// uses for model addressing. Job state is durable (RegistryDir/.harden):
// a daemon killed mid-job resumes it on the next start from the same
// registry dir.

// requireHarden answers false after writing the 422 that explains why a
// registry-less daemon has no hardening controller.
func (s *Server) requireHarden(w http.ResponseWriter) bool {
	if s.harden == nil {
		writeErrorCode(w, http.StatusUnprocessableEntity, wire.CodeInvalidSpec,
			"daemon has no model registry (start with -registry): hardening retrains and promotes registry models")
		return false
	}
	return true
}

func (s *Server) handleHardenSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.requireHarden(w) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var spec harden.Spec
	if err := dec.Decode(&spec); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.opts.MaxBodyBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return
	}
	snap, err := s.harden.Submit(spec)
	if err != nil {
		// The campaign taxonomy, reused verbatim: spec problems are the
		// client's (422 invalid_spec), backpressure is 429 queue_full, a
		// closed controller means the daemon is going away (503
		// unavailable), and a model the registry does not hold (or holds
		// with nothing live) takes the registry's own taxonomy members.
		status := http.StatusUnprocessableEntity
		code := wire.CodeInvalidSpec
		switch {
		case errors.Is(err, harden.ErrQueueFull):
			status, code = http.StatusTooManyRequests, wire.CodeQueueFull
		case errors.Is(err, harden.ErrClosed):
			status, code = http.StatusServiceUnavailable, wire.CodeUnavailable
		case errors.Is(err, registry.ErrUnknownModel):
			status, code = http.StatusNotFound, wire.CodeUnknownModel
		case errors.Is(err, registry.ErrVersionConflict):
			status, code = http.StatusConflict, wire.CodeVersionConflict
		}
		writeErrorCode(w, status, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, snap)
}

// HardenList answers GET /v1/harden.
type HardenList struct {
	Jobs []harden.Snapshot `json:"jobs"`
}

func (s *Server) handleHardenList(w http.ResponseWriter, r *http.Request) {
	if !s.requireHarden(w) {
		return
	}
	writeJSON(w, http.StatusOK, HardenList{Jobs: s.harden.List()})
}

func (s *Server) handleHardenGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireHarden(w) {
		return
	}
	snap, ok := s.harden.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown hardening job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHardenCancel(w http.ResponseWriter, r *http.Request) {
	if !s.requireHarden(w) {
		return
	}
	snap, ok := s.harden.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown hardening job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusAccepted, snap)
}
