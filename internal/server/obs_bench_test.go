package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"malevade/internal/wire"
)

// The observability-overhead benchmark pair: the binary fast path driven
// through the fully instrumented handler (request-ID middleware, HTTP
// families, per-precision row counters) versus the same handler chain
// with the middleware bypassed. BENCH_obs.json commits the measured
// pair; the budget is middleware overhead below 2% at the binary
// operating point (256-row float32 frames on a paper-sized model).

var (
	obsBenchOnce  sync.Once
	obsBenchSrv   *Server
	obsBenchFrame []byte
)

func obsBenchSetup(b *testing.B) {
	b.Helper()
	obsBenchOnce.Do(func() {
		dir := b.TempDir()
		path, _ := saveTestNet(b, dir, "model.gob", []int{491, 512, 256, 2}, 7)
		s, err := New(Options{ModelPath: path})
		if err != nil {
			panic(err)
		}
		obsBenchSrv = s

		const rows, cols = 256, 491
		values := make([]float32, rows*cols)
		rng := uint64(99)
		for i := range values {
			rng = rng*6364136223846793005 + 1442695040888963407
			if rng%10 < 3 {
				values[i] = 1
			}
		}
		obsBenchFrame, err = wire.AppendFrame(nil, "", rows, cols, values)
		if err != nil {
			panic(err)
		}
	})
}

func benchScoreFrames(b *testing.B, handler http.Handler) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/score",
			bytes.NewReader(obsBenchFrame))
		req.Header.Set("Content-Type", wire.ContentTypeRowsF32)
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	b.ReportMetric(256*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkScoreInstrumented is the production path: every binary frame
// crosses the request-ID middleware and records into the HTTP and
// precision families on its way to the float32 plan.
func BenchmarkScoreInstrumented(b *testing.B) {
	obsBenchSetup(b)
	benchScoreFrames(b, obsBenchSrv)
}

// BenchmarkScoreUninstrumented is the same frames through the bare mux —
// no middleware, no request IDs, no HTTP families — isolating exactly
// the per-request cost the observability layer adds.
func BenchmarkScoreUninstrumented(b *testing.B) {
	obsBenchSetup(b)
	benchScoreFrames(b, obsBenchSrv.mux)
}
