package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"malevade/internal/attack"
	"malevade/internal/campaign"
	"malevade/internal/client"
	"malevade/internal/defense"
	"malevade/internal/detector"
	"malevade/internal/tensor"
	"malevade/internal/wire"
)

// The taxonomy tests drive a live daemon through the client SDK and
// assert every refusal decodes into the right typed error — the
// 422-vs-500 reload split, the 429 backpressure split, 400/404/413/503 —
// exercising both halves of the wire-error round trip at once.

func wantWireError(t *testing.T, err error, status int, sentinel error) {
	t.Helper()
	if err == nil {
		t.Fatal("call succeeded, want a typed refusal")
	}
	var we *wire.Error
	if !errors.As(err, &we) {
		t.Fatalf("error is %T (%v), want *wire.Error", err, err)
	}
	if we.Status != status {
		t.Fatalf("status %d (%s), want %d", we.Status, we.Code, status)
	}
	if we.Code != wire.CodeForStatus(status) {
		t.Fatalf("code %q does not pair with status %d", we.Code, status)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("refusal %v does not match its sentinel %v", err, sentinel)
	}
}

// TestReloadErrorSplit: a bad client-supplied path is the client's fault
// (422 invalid_spec); the daemon's own configured model going bad is a
// server fault (500 internal). Both must reach the SDK as typed errors.
func TestReloadErrorSplit(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveTestNet(t, dir, "model.gob", []int{3, 8, 2}, 7)
	s, err := New(Options{ModelPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// Client-supplied garbage path → 422.
	_, err = c.Reload(ctx, dir+"/nope.gob")
	wantWireError(t, err, http.StatusUnprocessableEntity, wire.ErrInvalidSpec)

	// The daemon's own configured model corrupted on disk → 500.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = c.Reload(ctx, "")
	wantWireError(t, err, http.StatusInternalServerError, wire.ErrInternal)

	// The current generation keeps serving through both refusals.
	if _, err := c.Label(ctx, tensor.New(2, 3)); err != nil {
		t.Fatalf("daemon stopped serving after refused reloads: %v", err)
	}
}

// slowJudge is a campaign target whose batches take long enough that the
// submissions below deterministically stack up behind the single worker.
type slowJudge struct{ delay time.Duration }

func (s slowJudge) LabelBatch(ctx context.Context, x *tensor.Matrix) ([]int, int64, error) {
	timer := time.NewTimer(s.delay)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	case <-timer.C:
	}
	return make([]int, x.Rows), 1, nil
}

// TestCampaignBackpressure: a full campaign queue answers 429 queue_full,
// distinct from the 422 a bad spec gets and the 404 an unknown id gets.
func TestCampaignBackpressure(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveTestNet(t, dir, "model.gob", []int{4, 8, 2}, 7)
	s, err := New(Options{
		ModelPath: path,
		Campaigns: campaign.Options{Workers: 1, QueueDepth: 1,
			LocalTarget: slowJudge{delay: 30 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// A slow campaign (many slow one-row batches) occupies the only
	// worker…
	rows := make([][]float64, 256)
	for i := range rows {
		rows[i] = make([]float64, 4)
	}
	slow := campaign.Spec{
		Attack:    attack.Config{Kind: attack.KindJSMA, Theta: 0.1, Gamma: 0.5},
		Rows:      rows,
		BatchSize: 1,
	}
	running, err := c.SubmitCampaign(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has demonstrably picked it up, so the next
	// submission sits in the queue instead of racing the drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := c.CampaignSnapshot(ctx, running.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Status == campaign.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never started: %s", snap.Status)
		}
		time.Sleep(time.Millisecond)
	}
	// …a second fills the queue…
	if _, err := c.SubmitCampaign(ctx, slow); err != nil {
		t.Fatal(err)
	}
	// …and the third is backpressure: 429 queue_full.
	_, err = c.SubmitCampaign(ctx, slow)
	wantWireError(t, err, http.StatusTooManyRequests, wire.ErrQueueFull)

	// A semantically bad spec is 422 invalid_spec, not backpressure.
	_, err = c.SubmitCampaign(ctx, campaign.Spec{Attack: attack.Config{Kind: "bogus"}})
	wantWireError(t, err, http.StatusUnprocessableEntity, wire.ErrInvalidSpec)

	// An unknown id is 404 not_found.
	_, err = c.CampaignSnapshot(ctx, "c999999", 0)
	wantWireError(t, err, http.StatusNotFound, wire.ErrNotFound)
	_, err = c.CancelCampaign(ctx, "c999999")
	wantWireError(t, err, http.StatusNotFound, wire.ErrNotFound)

	// Drain so Close is quick.
	if _, err := c.CancelCampaign(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
}

// TestScoringRefusalTaxonomy: oversized batches are 400 bad_request,
// oversized bodies 413 too_large, wrong method 405, and a closed daemon
// 503 unavailable — each as its typed error through the SDK.
func TestScoringRefusalTaxonomy(t *testing.T) {
	path, _ := saveTestNet(t, t.TempDir(), "model.gob", []int{3, 8, 2}, 7)
	s, err := New(Options{ModelPath: path, MaxRows: 2, MaxBodyBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// 3 rows against a 2-row cap → 400 (the client's single request
	// carries all rows; MaxBatch default is far larger).
	_, err = c.Label(ctx, tensor.New(3, 3))
	wantWireError(t, err, http.StatusBadRequest, wire.ErrBadRequest)

	// A payload past MaxBodyBytes → 413.
	_, _, err = c.Score(ctx, tensor.New(2, 3000))
	wantWireError(t, err, http.StatusRequestEntityTooLarge, wire.ErrTooLarge)

	// Wrong method → 405 (GET against /v1/score via the health path's
	// transport; easiest to provoke directly through a raw handler
	// probe is out of SDK scope, so exercise it with the recorder).
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/score", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/score = %d, want 405", rec.Code)
	}
	env := wire.Envelope{}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Code != wire.CodeMethodNotAllowed {
		t.Fatalf("405 envelope %+v (err %v), want method_not_allowed", env, err)
	}

	// Shut down → 503 unavailable. The SDK retries 5xx on idempotent
	// calls, so trim the budget to keep the test fast.
	s.Close()
	c.Retries = -1
	_, err = c.Label(ctx, tensor.New(1, 3))
	wantWireError(t, err, http.StatusServiceUnavailable, wire.ErrUnavailable)
}

// TestServedDefenses: a daemon with ServerOptions.Defenses serves the
// hardened detector — its /v1/label verdicts are bit-identical to the
// same chain built in-process via Chain.Wrap, health reports the chain,
// and campaigns judged by the daemon use the defended path.
func TestServedDefenses(t *testing.T) {
	dir := t.TempDir()
	path, net := saveTestNet(t, dir, "model.gob", []int{6, 16, 2}, 11)
	chain := defense.Chain{{Kind: defense.KindSqueeze, Bits: 1, Threshold: 0.05}}
	s, err := New(Options{ModelPath: path, Defenses: chain})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// In-process reference: the same chain wrapped around the same net.
	ref, err := chain.Wrap(detector.NewDNN(net))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(32, 6)
	rng := uint64(1)
	for i := range x.Data {
		rng = rng*6364136223846793005 + 1442695040888963407
		x.Data[i] = float64(rng%1000) / 1000
	}
	want := ref.Predict(x)

	got, err := c.Label(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("defended daemon label %d = %d, in-process chain %d", i, got[i], want[i])
		}
	}
	// Score's Prob saturates to 1 for flagged rows, matching the chain.
	verdicts, _, err := c.Score(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	wantProbs := ref.MalwareProb(x)
	for i := range verdicts {
		if verdicts[i].Prob != wantProbs[i] || verdicts[i].Class != want[i] {
			t.Fatalf("defended verdict %d = {%v %d}, want {%v %d}",
				i, verdicts[i].Prob, verdicts[i].Class, wantProbs[i], want[i])
		}
	}

	// Health names the live chain.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Defenses) != 1 || h.Defenses[0] != "squeeze(bits=1,thr=0.05)" {
		t.Fatalf("health defenses %v", h.Defenses)
	}

	// A campaign against this daemon is judged through the same defended
	// path: its baseline verdicts must match the chain's.
	rows := make([][]float64, 8)
	for i := range rows {
		rows[i] = x.Row(i)
	}
	snap, err := c.SubmitCampaign(ctx, campaign.Spec{
		Attack: attack.Config{Kind: attack.KindFGSM, Theta: 0.1},
		Rows:   rows,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitCampaign(ctx, snap.ID, client.WaitOptions{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != campaign.StatusDone {
		t.Fatalf("campaign %s (%s), want done", final.Status, final.Error)
	}
	for _, r := range final.Results {
		if got := r.BaselineDetected; got != (want[r.Index] == 1) {
			t.Fatalf("campaign baseline verdict for row %d = %v, defended chain says %v",
				r.Index, got, want[r.Index] == 1)
		}
	}

	// Non-servable chains are rejected at construction, pointing at the
	// offline path.
	if _, err := New(Options{ModelPath: path,
		Defenses: defense.Chain{{Kind: defense.KindDistill, Epochs: 1}}}); err == nil {
		t.Fatal("data-consuming defense accepted as servable")
	}
}
