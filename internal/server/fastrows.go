package server

import (
	"strconv"

	"malevade/internal/tensor"
)

// fastParseRows is the hot-path decoder for the scoring request body:
// a hand-rolled scanner for the canonical shape
//
//	{"rows": [[n, n, ...], ...]}
//
// that parses straight into the batch matrix without reflection. At batch
// 256×491 it is ~7× faster than encoding/json, which is what keeps the
// client SDK's wire overhead inside its budget (see BENCH_client.json).
//
// Safety contract: the parser accepts an input only when the strict
// encoding/json path would accept it with the identical matrix — anything
// unexpected (unknown fields, wrong row count or width, malformed or
// non-finite numbers, trailing data) returns !ok and the caller falls
// back to the strict decoder, which produces the canonical error
// responses. The fuzz target FuzzScoreRequest cross-checks exactly this
// agreement on every generated input, so the fast path can never widen or
// shift the accepted language.
func fastParseRows(raw []byte, inDim, maxRows int) (*tensor.Matrix, bool) {
	p := rowsParser{buf: raw}
	p.ws()
	if !p.eat('{') {
		return nil, false
	}
	p.ws()
	if !p.literal(`"rows"`) {
		return nil, false
	}
	p.ws()
	if !p.eat(':') {
		return nil, false
	}
	p.ws()
	if !p.eat('[') {
		return nil, false
	}

	// First row sizes nothing yet: rows arrive row-by-row and the matrix
	// grows in whole-row steps, capped by maxRows so a hostile body
	// cannot balloon allocation past the configured batch limit.
	data := make([]float64, 0, 64*inDim)
	rows := 0
	p.ws()
	if p.eat(']') {
		return nil, false // empty batch: the strict path owns the error
	}
	for {
		if rows >= maxRows {
			return nil, false
		}
		p.ws()
		if !p.eat('[') {
			return nil, false
		}
		width := 0
		p.ws()
		if !p.eat(']') {
			for {
				p.ws()
				v, ok := p.number()
				if !ok {
					return nil, false
				}
				if width >= inDim {
					return nil, false
				}
				data = append(data, v)
				width++
				p.ws()
				if p.eat(',') {
					continue
				}
				if p.eat(']') {
					break
				}
				return nil, false
			}
		}
		if width != inDim {
			return nil, false
		}
		rows++
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			break
		}
		return nil, false
	}
	p.ws()
	if !p.eat('}') {
		return nil, false
	}
	p.ws()
	if p.pos != len(p.buf) {
		return nil, false // trailing data
	}
	return tensor.FromSlice(rows, inDim, data), true
}

// rowsParser is a minimal cursor over the request body.
type rowsParser struct {
	buf []byte
	pos int
}

func (p *rowsParser) ws() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *rowsParser) eat(c byte) bool {
	if p.pos < len(p.buf) && p.buf[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *rowsParser) literal(s string) bool {
	if p.pos+len(s) <= len(p.buf) && string(p.buf[p.pos:p.pos+len(s)]) == s {
		p.pos += len(s)
		return true
	}
	return false
}

// number scans one JSON number. The binary-feature fast path (a bare "0"
// or "1") costs no ParseFloat at all; everything else takes the strict
// JSON number grammar and rejects non-finite results, mirroring
// decodeRows' finiteness check.
func (p *rowsParser) number() (float64, bool) {
	start := p.pos
	if p.pos >= len(p.buf) {
		return 0, false
	}
	// Fast path: single-digit 0/1 followed by a delimiter.
	if c := p.buf[p.pos]; c == '0' || c == '1' {
		if p.pos+1 >= len(p.buf) {
			return 0, false
		}
		switch p.buf[p.pos+1] {
		case ',', ']', ' ', '\t', '\n', '\r':
			p.pos++
			return float64(c - '0'), true
		}
	}
	// General JSON number grammar: -?int frac? exp?
	p.eat('-')
	intStart := p.pos
	digits := 0
	for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
		p.pos++
		digits++
	}
	if digits == 0 {
		return 0, false
	}
	// JSON forbids leading zeros ("01"); keep strict agreement.
	if digits > 1 && p.buf[intStart] == '0' {
		return 0, false
	}
	if p.eat('.') {
		fdigits := 0
		for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
			p.pos++
			fdigits++
		}
		if fdigits == 0 {
			return 0, false
		}
	}
	if p.pos < len(p.buf) && (p.buf[p.pos] == 'e' || p.buf[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.buf) && (p.buf[p.pos] == '+' || p.buf[p.pos] == '-') {
			p.pos++
		}
		edigits := 0
		for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
			p.pos++
			edigits++
		}
		if edigits == 0 {
			return 0, false
		}
	}
	v, err := strconv.ParseFloat(string(p.buf[start:p.pos]), 64)
	if err != nil {
		// Out-of-range literals (1e999) differ from encoding/json's
		// error; let the strict path own them.
		return 0, false
	}
	return v, true
}
