package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"malevade/internal/attack"
	"malevade/internal/harden"
	"malevade/internal/wire"
)

// attackJSMASmall is the paper's grey-box operating point, reused by every
// hardening API test.
func attackJSMASmall() attack.Config {
	return attack.Config{Kind: attack.KindJSMA, Theta: 0.1, Gamma: 0.025}
}

// hardenQueueOpts shrinks the controller to one worker and a one-deep queue
// so backpressure is reachable with three submissions.
func hardenQueueOpts() harden.Options {
	return harden.Options{Workers: 1, QueueDepth: 1}
}

// registerTestModel registers a saved network file as a named registry model
// over the API (a model's first version is always promoted live).
func registerTestModel(t *testing.T, s *Server, name, path string) {
	t.Helper()
	body, err := json.Marshal(RegisterModelRequest{Name: name, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if w := postJSON(t, s, "/v1/models", string(body)); w.Code != http.StatusOK {
		t.Fatalf("register %s: status %d: %s", name, w.Code, w.Body.String())
	}
}

// submitHarden posts a hardening spec and decodes the accepted snapshot.
func submitHarden(t *testing.T, s *Server, spec harden.Spec) harden.Snapshot {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, s, "/v1/harden", string(body))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit harden: status %d: %s", w.Code, w.Body.String())
	}
	var snap harden.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// getHarden fetches one hardening snapshot over the API.
func getHarden(t *testing.T, s *Server, id string) harden.Snapshot {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/harden/"+id, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("get %s: status %d: %s", id, w.Code, w.Body.String())
	}
	var snap harden.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// awaitHarden polls the API until the hardening job is terminal.
func awaitHarden(t *testing.T, s *Server, id string) harden.Snapshot {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		snap := getHarden(t, s, id)
		if snap.Status.Terminal() {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("hardening job %s never finished", id)
	return harden.Snapshot{}
}

// expectHardenError posts a body to /v1/harden and asserts the status and
// taxonomy code of the error envelope.
func expectHardenError(t *testing.T, s *Server, body string, status int, code string) {
	t.Helper()
	w := postJSON(t, s, "/v1/harden", body)
	if w.Code != status {
		t.Fatalf("status %d, want %d: %s", w.Code, status, w.Body.String())
	}
	var e errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("status %d without JSON error envelope: %s", w.Code, w.Body.String())
	}
	if e.Code != code {
		t.Fatalf("error code %q, want %q (%s)", e.Code, code, w.Body.String())
	}
}

// TestHardenAPINoRegistry: a registry-less daemon has no hardening
// controller; every /v1/harden verb explains that as a 422 invalid_spec,
// matching the scoring path's model-addressing refusal.
func TestHardenAPINoRegistry(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	for _, probe := range []struct{ method, path, body string }{
		{http.MethodPost, "/v1/harden", `{"model":"m","attack":{"kind":"fgsm","theta":0.1}}`},
		{http.MethodGet, "/v1/harden", ""},
		{http.MethodGet, "/v1/harden/h000001", ""},
		{http.MethodDelete, "/v1/harden/h000001", ""},
	} {
		req := httptest.NewRequest(probe.method, probe.path, strings.NewReader(probe.body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusUnprocessableEntity {
			t.Errorf("%s %s: status %d, want 422", probe.method, probe.path, w.Code)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Code != wire.CodeInvalidSpec {
			t.Errorf("%s %s: envelope %s, want code invalid_spec", probe.method, probe.path, w.Body.String())
		}
	}
}

// TestHardenAPILifecycle drives the wire surface on a registry daemon:
// every documented error code, submit, list, get, and a cancel that
// converges to cancelled.
func TestHardenAPILifecycle(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveTestNet(t, dir, "prod.gob", []int{491, 12, 2}, 7)
	s, _ := newTestServer(t, Options{ModelPath: path, RegistryDir: t.TempDir(), MaxBodyBytes: 1 << 12})
	registerTestModel(t, s, "prod", path)

	// The request-decoding and taxonomy walls, in order of depth.
	expectHardenError(t, s, `{not json`, http.StatusBadRequest, wire.CodeBadRequest)
	expectHardenError(t, s, `{"model":"prod","attack":{"kind":"fgsm","theta":0.1},"bogus":1}`,
		http.StatusBadRequest, wire.CodeBadRequest)
	expectHardenError(t, s, `{"model":"prod","attack":{"kind":"fgsm","theta":0.1}} trailing`,
		http.StatusBadRequest, wire.CodeBadRequest)
	expectHardenError(t, s, fmt.Sprintf(`{"model":"prod","attack":{"kind":"fgsm","theta":0.1},"name":%q}`,
		strings.Repeat("x", 1<<13)), http.StatusRequestEntityTooLarge, wire.CodeTooLarge)
	expectHardenError(t, s, `{"model":"prod","attack":{"kind":"fgsm","theta":0.1},"rounds":-1}`,
		http.StatusUnprocessableEntity, wire.CodeInvalidSpec)
	expectHardenError(t, s, `{"model":"prod","attack":{"kind":"fgsm","theta":0.1},"target_url":"http://x"}`,
		http.StatusUnprocessableEntity, wire.CodeInvalidSpec)
	expectHardenError(t, s, `{"model":"prod","attack":{"kind":"warp","theta":0.1}}`,
		http.StatusUnprocessableEntity, wire.CodeInvalidSpec)
	expectHardenError(t, s, `{"model":"prod","attack":{"kind":"fgsm","theta":0.1},"profile":"galactic"}`,
		http.StatusUnprocessableEntity, wire.CodeInvalidSpec)
	expectHardenError(t, s, `{"model":"ghost","attack":{"kind":"fgsm","theta":0.1}}`,
		http.StatusNotFound, wire.CodeUnknownModel)

	// Unknown-job lookups on both read verbs.
	for _, method := range []string{http.MethodGet, http.MethodDelete} {
		req := httptest.NewRequest(method, "/v1/harden/h999999", nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusNotFound {
			t.Errorf("%s unknown job: status %d, want 404", method, w.Code)
		}
	}

	// A valid submit is accepted and immediately cancellable; the DELETE
	// answers 202 and the job converges to cancelled (it is cancelled
	// faster than its first campaign could possibly finish).
	snap := submitHarden(t, s, harden.Spec{
		Model:  "prod",
		Attack: attackJSMASmall(),
		Rounds: 1,
		Epochs: 1,
	})
	if snap.ID == "" || snap.Status.Terminal() {
		t.Fatalf("accepted snapshot %+v, want a live job id", snap)
	}
	req := httptest.NewRequest(http.MethodDelete, "/v1/harden/"+snap.ID, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("cancel: status %d: %s", w.Code, w.Body.String())
	}
	final := awaitHarden(t, s, snap.ID)
	if final.Status != harden.StatusCancelled {
		t.Fatalf("cancelled job converged to %s (%s), want cancelled", final.Status, final.Error)
	}

	// The list view carries the job, and stats count the submission.
	req = httptest.NewRequest(http.MethodGet, "/v1/harden", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("list: status %d", w.Code)
	}
	var list HardenList
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != snap.ID {
		t.Fatalf("list %+v, want exactly %s", list.Jobs, snap.ID)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var stats StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.HardenJobs != 1 {
		t.Errorf("stats harden_jobs %d, want 1", stats.HardenJobs)
	}
}

// TestHardenAPIQueueFull: backpressure surfaces as 429 queue_full once one
// job occupies the single worker and another fills the queue.
func TestHardenAPIQueueFull(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveTestNet(t, dir, "prod.gob", []int{491, 12, 2}, 7)
	s, _ := newTestServer(t, Options{
		ModelPath:   path,
		RegistryDir: t.TempDir(),
		Harden:      hardenQueueOpts(),
	})
	registerTestModel(t, s, "prod", path)

	spec := harden.Spec{Model: "prod", Attack: attackJSMASmall(), Rounds: 1, Epochs: 1}
	running := submitHarden(t, s, spec)
	// Wait until the first job leaves the queue (its campaign keeps the
	// worker busy for far longer than this test lives).
	deadline := time.Now().Add(30 * time.Second)
	for getHarden(t, s, running.ID).Status == harden.StatusQueued {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued := submitHarden(t, s, spec)

	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, s, "/v1/harden", string(body))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429: %s", w.Code, w.Body.String())
	}
	var e errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Code != wire.CodeQueueFull {
		t.Fatalf("429 envelope %s, want code queue_full", w.Body.String())
	}

	for _, id := range []string{queued.ID, running.ID} {
		req := httptest.NewRequest(http.MethodDelete, "/v1/harden/"+id, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("cancel %s: status %d", id, rec.Code)
		}
		awaitHarden(t, s, id)
	}
}
