package server

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"malevade/internal/attack"
	"malevade/internal/blackbox"
	"malevade/internal/dataset"
	"malevade/internal/detector"
	"malevade/internal/evaluation"
)

// TestE2EBlackBoxOverHTTP runs the paper's black-box pipeline end to end
// against a live HTTP endpoint: train a small target detector, deploy it
// behind the daemon, train a substitute through blackbox.HTTPOracle over the
// wire, and check the whole run — oracle labels, query budget, substitute
// weights, transfer rate — is bit-for-bit identical to the same pipeline
// driven by the in-process DetectorOracle. The daemon must be a transparent
// network boundary, not a new numeric path.
func TestE2EBlackBoxOverHTTP(t *testing.T) {
	corpus, err := dataset.Generate(dataset.TableIConfig(1).Scaled(150))
	if err != nil {
		t.Fatal(err)
	}
	target, err := detector.Train(corpus.Train, detector.TrainConfig{
		Arch:       detector.ArchTarget,
		WidthScale: 0.1,
		Epochs:     12,
		BatchSize:  64,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}

	modelPath := filepath.Join(t.TempDir(), "target.gob")
	if err := target.Net.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{ModelPath: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	seed := blackbox.SeedSet(corpus.Val, 10, 1)
	cfg := blackbox.SubstituteConfig{
		Arch:           detector.ArchTarget,
		WidthScale:     0.1,
		Rounds:         3,
		EpochsPerRound: 6,
		Seed:           9,
	}

	// The HTTP oracle chunks requests; pick a chunk smaller than the seed
	// set so the wire path really exercises multi-request batches.
	remote := blackbox.NewHTTPOracle(ts.URL)
	remote.Client.MaxBatch = 7
	local := blackbox.NewDetectorOracle(target)

	subRemote, err := blackbox.TrainSubstitute(context.Background(), remote, seed, cfg)
	if err != nil {
		t.Fatalf("substitute training over HTTP: %v", err)
	}
	subLocal, err := blackbox.TrainSubstitute(context.Background(), local, seed.Clone(), cfg)
	if err != nil {
		t.Fatalf("substitute training in-process: %v", err)
	}

	// Identical query budgets: the wire oracle must count one query per
	// row, exactly like the in-process reference.
	if subRemote.QueriesUsed != subLocal.QueriesUsed {
		t.Errorf("queries: HTTP %d, in-process %d", subRemote.QueriesUsed, subLocal.QueriesUsed)
	}
	if subRemote.TrainingSetSize != subLocal.TrainingSetSize {
		t.Errorf("training set: HTTP %d, in-process %d", subRemote.TrainingSetSize, subLocal.TrainingSetSize)
	}
	// Identical convergence traces: any label mismatch anywhere in the
	// loop would perturb these.
	if len(subRemote.RoundAgreement) != len(subLocal.RoundAgreement) {
		t.Fatalf("rounds: HTTP %d, in-process %d", len(subRemote.RoundAgreement), len(subLocal.RoundAgreement))
	}
	for i := range subRemote.RoundAgreement {
		if subRemote.RoundAgreement[i] != subLocal.RoundAgreement[i] {
			t.Errorf("round %d agreement: HTTP %v, in-process %v",
				i, subRemote.RoundAgreement[i], subLocal.RoundAgreement[i])
		}
	}

	// The substitutes themselves must be bit-identical: same oracle labels
	// plus deterministic training means every weight matches.
	mal := corpus.Test.FilterLabel(dataset.LabelMalware)
	logitsRemote := subRemote.Model.Net.Logits(mal.X)
	logitsLocal := subLocal.Model.Net.Logits(mal.X)
	for i := range logitsRemote.Data {
		if logitsRemote.Data[i] != logitsLocal.Data[i] {
			t.Fatalf("substitute logits diverge at element %d: %v vs %v",
				i, logitsRemote.Data[i], logitsLocal.Data[i])
		}
	}

	// Headline metric: JSMA on each substitute, deployed against the real
	// target — transfer rates must match bit-for-bit.
	advRemote := attack.AdvMatrix((&attack.JSMA{Model: subRemote.Model.Net, Theta: 0.1, Gamma: 0.025}).Run(mal.X))
	advLocal := attack.AdvMatrix((&attack.JSMA{Model: subLocal.Model.Net, Theta: 0.1, Gamma: 0.025}).Run(mal.X))
	trRemote := evaluation.TransferRate(target, advRemote)
	trLocal := evaluation.TransferRate(target, advLocal)
	if trRemote != trLocal {
		t.Fatalf("transfer rate: HTTP-driven %v, in-process %v", trRemote, trLocal)
	}
	t.Logf("transfer rate %.4f identical across HTTP and in-process oracles (%d queries)",
		trRemote, subRemote.QueriesUsed)
}
