package server

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"malevade/internal/attack"
	"malevade/internal/campaign"
	"malevade/internal/client"
	"malevade/internal/detector"
	"malevade/internal/experiments"
)

// TestE2ECampaignMatchesLab is the campaign acceptance test: a campaign
// submitted over HTTP — crafting on the Lab's substitute, populated from
// the Lab's profile, judged against the Lab's target through the remote
// /v1/label oracle — must reproduce the in-process experiments Lab's
// evasion and transfer numbers bit-for-bit at the default seed. The
// campaign layer, the wire, and the batch split must all be numerically
// invisible.
func TestE2ECampaignMatchesLab(t *testing.T) {
	// In-process reference: the grey-box pipeline at the paper's
	// operating point θ=0.1, γ=0.025 on the Small profile.
	lab := experiments.NewLab(experiments.Small)
	defer lab.Close()
	target, err := lab.Target()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := lab.Substitute()
	if err != nil {
		t.Fatal(err)
	}
	mal, err := lab.TestMalware()
	if err != nil {
		t.Fatal(err)
	}
	ref := (&attack.JSMA{Model: sub.Net, Theta: 0.1, Gamma: 0.025}).Run(mal.X)
	refAdv := attack.AdvMatrix(ref)
	refBaseline := detector.DetectionRate(target, mal.X)
	refAttacked := detector.DetectionRate(target, refAdv)
	refBaseLabels := target.Predict(mal.X)
	refAdvLabels := target.Predict(refAdv)

	// Deployment: the Lab's target behind a real HTTP daemon, the Lab's
	// substitute saved where the daemon can load it as the crafting model.
	dir := t.TempDir()
	targetPath := filepath.Join(dir, "target.gob")
	if err := target.Net.SaveFile(targetPath); err != nil {
		t.Fatal(err)
	}
	subPath := filepath.Join(dir, "substitute.gob")
	if err := sub.Net.SaveFile(subPath); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{ModelPath: targetPath})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// The campaign travels the full wire path twice over: the spec is
	// submitted over HTTP, and TargetURL routes every evasion verdict
	// through the remote /v1/label oracle rather than the in-process
	// model. A batch size that doesn't divide the population exercises
	// the ragged final batch.
	spec := campaign.Spec{
		Name: "e2e-greybox",
		Attack: attack.Config{
			Kind: attack.KindJSMA, Theta: 0.1, Gamma: 0.025,
		},
		CraftModelPath: subPath,
		Profile:        "small",
		TargetURL:      ts.URL,
		BatchSize:      17,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c := client.New(ts.URL)
	snap, err := c.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatalf("submit over HTTP: %v", err)
	}
	final, err := c.WaitCampaign(ctx, snap.ID, client.WaitOptions{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("campaign %s never finished: %v", snap.ID, err)
	}
	if final.Status != campaign.StatusDone {
		t.Fatalf("campaign status %s (%s), want done", final.Status, final.Error)
	}

	// The population must be the Lab's, sample for sample.
	n := mal.X.Rows
	if final.TotalSamples != n || final.DoneSamples != n || len(final.Results) != n {
		t.Fatalf("campaign judged %d/%d samples with %d results, Lab attacked %d",
			final.DoneSamples, final.TotalSamples, len(final.Results), n)
	}

	// Bit-for-bit per-sample agreement with the in-process pipeline:
	// identical baseline verdicts, identical evasion verdicts, identical
	// perturbation geometry.
	evaded, detected := 0, 0
	for i, r := range final.Results {
		if want := refBaseLabels[i] == 1; r.BaselineDetected != want {
			t.Fatalf("sample %d: baseline detected %v over the wire, %v in-process", i, r.BaselineDetected, want)
		}
		if want := refAdvLabels[i] == 0; r.Evaded != want {
			t.Fatalf("sample %d: evaded %v over the wire, %v in-process", i, r.Evaded, want)
		}
		if r.CraftEvaded != ref[i].Evaded {
			t.Fatalf("sample %d: craft evasion %v over the wire, %v in-process", i, r.CraftEvaded, ref[i].Evaded)
		}
		if r.L2 != ref[i].L2 {
			t.Fatalf("sample %d: L2 %v over the wire, %v in-process", i, r.L2, ref[i].L2)
		}
		if r.ModifiedFeatures != len(ref[i].ModifiedFeatures) {
			t.Fatalf("sample %d: %d modified features over the wire, %d in-process",
				i, r.ModifiedFeatures, len(ref[i].ModifiedFeatures))
		}
		if r.Evaded {
			evaded++
		}
		if r.BaselineDetected {
			detected++
		}
	}

	// Rate-level bit-for-bit equality, expressed as the Lab computes them:
	// detection = detected/n, so the campaign's complement counts must
	// reproduce DetectionRate exactly.
	if got, want := final.BaselineDetectionRate, refBaseline; got != want {
		t.Errorf("baseline detection rate %v over the wire, %v in-process", got, want)
	}
	if got, want := float64(n-evaded)/float64(n), refAttacked; got != want {
		t.Errorf("detection-under-attack %v over the wire, %v in-process", got, want)
	}
	transfer := 1 - refAttacked
	t.Logf("campaign over HTTP reproduced Lab grey-box numbers bit-for-bit: baseline %.4f, transfer %.4f (%d samples, %d batches, generations %v)",
		refBaseline, transfer, n, final.Batches, final.Generations)

	// The whole campaign ran against one model generation (no reloads).
	if len(final.Generations) != 1 {
		t.Errorf("generations %v, want exactly one without reloads", final.Generations)
	}
}
