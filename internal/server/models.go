package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"malevade/internal/defense"
	"malevade/internal/registry"
	"malevade/internal/wire"
)

// The models API exposes the disk-backed registry (internal/registry) over
// the daemon — named, versioned, durable detectors with atomic live
// promotion:
//
//	GET    /v1/models         list models                      → 200
//	POST   /v1/models         register a model file version    → 200 + model
//	GET    /v1/models/{name}  inspect one model                → 200
//	POST   /v1/models/{name}  {"action":"promote"|"gc", ...}   → 200 + model
//	DELETE /v1/models/{name}  delete the model and its files   → 200
//
// Scoring and label requests address a registered model with the "model"
// body field; campaign specs with "target_model". Error taxonomy: unknown
// names are 404 unknown_model, a missing version (or a model with nothing
// live) is 409 version_conflict, capacity is 507 registry_full, and a
// daemon started without -registry refuses every mutation with 422.

// RegisterModelRequest is the body of POST /v1/models: ingest the model
// file at Path (on the daemon's disk, mirroring /v1/reload semantics) as a
// new version of Name.
type RegisterModelRequest struct {
	// Name is the registry model to append to (created when new).
	Name string `json:"name"`
	// Path is the daemon-side nn.SaveFile model file to ingest.
	Path string `json:"path"`
	// Defenses is the servable defense chain the version is wrapped in
	// whenever it is live (empty registers a bare model).
	Defenses defense.Chain `json:"defenses,omitempty"`
	// Promote makes the new version live immediately; a model's first
	// version is always promoted.
	Promote bool `json:"promote,omitempty"`
	// Pin protects the version from GC once it stops being live.
	Pin bool `json:"pin,omitempty"`
}

// ModelActionRequest is the body of POST /v1/models/{name}.
type ModelActionRequest struct {
	// Action is "promote" (make Version live) or "gc" (drop unpinned
	// non-live versions).
	Action string `json:"action"`
	// Version is the version to promote (promote only).
	Version int `json:"version,omitempty"`
}

// ModelResponse wraps one model's state for register/inspect/action
// responses.
type ModelResponse struct {
	// Model is the model's registry state after the operation.
	Model registry.Info `json:"model"`
	// Removed counts versions a gc action deleted.
	Removed int `json:"removed,omitempty"`
}

// ModelListResponse answers GET /v1/models.
type ModelListResponse struct {
	// Models lists every registered model, sorted by name.
	Models []registry.Info `json:"models"`
}

// DeleteModelResponse answers DELETE /v1/models/{name}.
type DeleteModelResponse struct {
	// Name echoes the deleted model.
	Name string `json:"name"`
	// Deleted is always true on success.
	Deleted bool `json:"deleted"`
}

// writeRegistryError maps a registry failure onto the wire taxonomy.
func writeRegistryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, registry.ErrUnknownModel):
		writeErrorCode(w, http.StatusNotFound, wire.CodeUnknownModel, "%v", err)
	case errors.Is(err, registry.ErrVersionConflict):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, registry.ErrFull):
		writeError(w, http.StatusInsufficientStorage, "%v", err)
	case errors.Is(err, registry.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		// Everything else — invalid names, unloadable or wrong-shaped
		// model files, non-servable defense chains — is the client's
		// submission problem.
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	}
}

// requireRegistry answers nil and renders the refusal when the daemon was
// started without -registry.
func (s *Server) requireRegistry(w http.ResponseWriter) *registry.Registry {
	if s.registry == nil {
		writeError(w, http.StatusUnprocessableEntity,
			"daemon has no model registry (start with -registry)")
		return nil
	}
	return s.registry
}

// decodeModelBody strictly decodes a small JSON body for the models API.
func decodeModelBody(w http.ResponseWriter, r *http.Request, v any) bool {
	const maxBody = 1 << 20
	body := http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", int64(maxBody))
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func (s *Server) handleModelList(w http.ResponseWriter, r *http.Request) {
	if s.registry == nil {
		// A registry-less daemon lists an empty registry rather than
		// erroring: reads are harmless and clients can feature-detect.
		writeJSON(w, http.StatusOK, ModelListResponse{Models: []registry.Info{}})
		return
	}
	writeJSON(w, http.StatusOK, ModelListResponse{Models: s.registry.List()})
}

func (s *Server) handleModelRegister(w http.ResponseWriter, r *http.Request) {
	reg := s.requireRegistry(w)
	if reg == nil {
		return
	}
	var req RegisterModelRequest
	if !decodeModelBody(w, r, &req) {
		return
	}
	info, err := reg.Register(registry.RegisterRequest{
		Name:     req.Name,
		Path:     req.Path,
		Defenses: req.Defenses,
		Promote:  req.Promote,
		Pin:      req.Pin,
	})
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ModelResponse{Model: info})
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	reg := s.requireRegistry(w)
	if reg == nil {
		return
	}
	info, err := reg.Get(r.PathValue("name"))
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ModelResponse{Model: info})
}

func (s *Server) handleModelAction(w http.ResponseWriter, r *http.Request) {
	reg := s.requireRegistry(w)
	if reg == nil {
		return
	}
	var req ModelActionRequest
	if !decodeModelBody(w, r, &req) {
		return
	}
	name := r.PathValue("name")
	switch req.Action {
	case "promote":
		if req.Version <= 0 {
			writeError(w, http.StatusBadRequest, "promote requires a positive version, got %d", req.Version)
			return
		}
		info, err := reg.Promote(name, req.Version)
		if err != nil {
			writeRegistryError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ModelResponse{Model: info})
	case "gc":
		info, removed, err := reg.GC(name)
		if err != nil {
			writeRegistryError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ModelResponse{Model: info, Removed: removed})
	default:
		writeError(w, http.StatusBadRequest, "unknown action %q (promote|gc)", req.Action)
	}
}

func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	reg := s.requireRegistry(w)
	if reg == nil {
		return
	}
	name := r.PathValue("name")
	if err := reg.Delete(name); err != nil {
		writeRegistryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DeleteModelResponse{Name: name, Deleted: true})
}
