package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"malevade/internal/harden"
)

// FuzzHardenRequest throws arbitrary bytes at the /v1/harden submit
// decoder. The daemon is registry-enabled but its registry is empty, so
// even a semantically valid spec is refused at the unknown-model wall and
// no hardening job (with its campaign and retraining fit) ever starts —
// the fuzzer exercises the full decode + validate + taxonomy path at fuzz
// speed. The contract under attack-shaped input: a 202 always carries a
// decodable job snapshot, everything else is a 4xx JSON error envelope;
// the server never panics and never 5xxes.
func FuzzHardenRequest(f *testing.F) {
	f.Add([]byte(`{"model":"prod","attack":{"kind":"jsma","theta":0.1,"gamma":0.025},"rounds":2}`))
	f.Add([]byte(`{"model":"prod","attack":{"kind":"fgsm","theta":0.1}}`))
	f.Add([]byte(`{"model":"","attack":{"kind":"jsma","theta":0.1}}`))
	f.Add([]byte(`{"model":"prod","attack":{"kind":"warp"}}`))
	f.Add([]byte(`{"model":"prod","attack":{"kind":"jsma","theta":0.1},"rounds":-1}`))
	f.Add([]byte(`{"model":"prod","attack":{"kind":"jsma","theta":0.1},"rounds":1000000000}`))
	f.Add([]byte(`{"model":"prod","attack":{"kind":"jsma","theta":0.1},"target_url":"http://x"}`))
	f.Add([]byte(`{"model":"prod","attack":{"kind":"jsma","theta":0.1},"target_evasion_rate":1e999}`))
	f.Add([]byte(`{"model":"prod","attack":{"kind":"jsma","theta":0.1},"target_evasion_rate":-0.5}`))
	f.Add([]byte(`{"model":"prod","attack":{"kind":"jsma","theta":0.1},"max_samples":-7}`))
	f.Add([]byte(`{"model":"prod","attack":{"kind":"jsma","theta":0.1},"profile":"galactic"}`))
	f.Add([]byte(`{"model":"prod","attack":{"kind":"jsma","theta":0.1},"bogus":true}`))
	f.Add([]byte(`{"model":"prod","attack":{"kind":"jsma","theta":0.1}} trailing`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"model":123}`))

	path, _ := saveTestNet(f, f.TempDir(), "fuzz.gob", []int{3, 8, 2}, 7)
	s, err := New(Options{ModelPath: path, RegistryDir: f.TempDir(), MaxBodyBytes: 1 << 12})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/harden", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		switch {
		case w.Code == http.StatusAccepted:
			// Unreachable with an empty registry, but the contract stands:
			// an accepted job must come back as a decodable snapshot.
			var snap harden.Snapshot
			if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil || snap.ID == "" {
				t.Fatalf("202 without a decodable job snapshot: %s", w.Body)
			}
		case w.Code >= 400 && w.Code < 500:
			var e errorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" || e.Code == "" {
				t.Fatalf("%d without JSON error envelope: %s", w.Code, w.Body)
			}
		default:
			t.Fatalf("status %d on fuzzed input (want 202 or 4xx): %s", w.Code, w.Body)
		}
	})
}
