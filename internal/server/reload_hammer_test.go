package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"malevade/internal/rng"
	"malevade/internal/tensor"
)

// TestReloadHammerScoreConsistency is the hot-reload acceptance test: real
// HTTP traffic from many concurrent clients while the model is repeatedly
// hot-swapped between two versions. Every response must (a) arrive — zero
// dropped requests — and (b) be computed wholly by one model version: its
// advertised model_version's expected output must match every row
// bit-for-bit. Run under -race this also proves the swap/drain path is
// data-race free.
func TestReloadHammerScoreConsistency(t *testing.T) {
	dir := t.TempDir()
	dims := []int{8, 16, 2}
	pathA, netA := saveTestNet(t, dir, "a.gob", dims, 1)
	pathB, netB := saveTestNet(t, dir, "b.gob", dims, 2)

	const rows = 5
	r := rng.New(42)
	x := tensor.New(rows, dims[0])
	for i := range x.Data {
		x.Data[i] = r.Float64()
	}
	batch := make([][]float64, rows)
	for i := range batch {
		batch[i] = x.Row(i)
	}
	body, err := json.Marshal(ScoreRequest{Rows: batch})
	if err != nil {
		t.Fatal(err)
	}

	wantA := expectedResults(netA, x, 1)
	wantB := expectedResults(netB, x, 1)
	for i := range wantA {
		if wantA[i] == wantB[i] {
			t.Fatalf("row %d: models A and B agree exactly; hammer can't detect torn reads", i)
		}
	}
	// Versions alternate deterministically: v1 = A, each reload flips, so
	// odd versions serve A and even versions serve B.
	wantFor := func(version int64) []ScoreResult {
		if version%2 == 1 {
			return wantA
		}
		return wantB
	}

	s, err := New(Options{ModelPath: pathA})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	const clients = 8
	var (
		responses atomic.Int64
		stop      atomic.Bool
		wg        sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("request dropped: %v", err)
					return
				}
				var sr ScoreResponse
				decErr := json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d during reload hammer", resp.StatusCode)
					return
				}
				if decErr != nil {
					t.Errorf("decode: %v", decErr)
					return
				}
				want := wantFor(sr.ModelVersion)
				if len(sr.Results) != rows {
					t.Errorf("got %d results, want %d", len(sr.Results), rows)
					return
				}
				for i, got := range sr.Results {
					if got != want[i] {
						t.Errorf("version %d row %d: got %+v, want %+v — response mixes model versions",
							sr.ModelVersion, i, got, want[i])
						return
					}
				}
				responses.Add(1)
			}
		}()
	}

	// Hammer the swap path: alternate B, A, B, ... while traffic flows,
	// until enough responses have interleaved with the swaps (bounded by a
	// reload cap so a wedged client can't hang the test).
	const minResponses = 150
	const maxReloads = 5000
	paths := [2]string{pathB, pathA}
	reloads := 0
	for ; reloads < maxReloads && (responses.Load() < minResponses || reloads < 30); reloads++ {
		version, err := s.Reload(paths[reloads%2])
		if err != nil {
			t.Fatalf("reload %d: %v", reloads, err)
		}
		if version != int64(reloads+2) {
			t.Fatalf("reload %d: version %d, want %d", reloads, version, reloads+2)
		}
	}
	stop.Store(true)
	wg.Wait()

	if n := responses.Load(); n == 0 {
		t.Fatal("no responses completed during the hammer")
	} else {
		t.Logf("%d consistent responses across %d hot-reloads", n, reloads)
	}
}
