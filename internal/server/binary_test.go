package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"malevade/internal/defense"
	"malevade/internal/registry"
	"malevade/internal/serve"
	"malevade/internal/wire"
)

func postFrame(t *testing.T, s *Server, path string, frame []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(frame))
	req.Header.Set("Content-Type", wire.ContentTypeRowsF32)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func mustFrame32(t *testing.T, model string, rows, cols int, values []float32) []byte {
	t.Helper()
	raw, err := wire.AppendFrame(nil, model, rows, cols, values)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// frameRows are exactly float32-representable, so the float64-fallback
// paths (defended model, BinaryPrecision float64) must answer
// bit-identically to the JSON path over the same values.
func frameRows(rows, cols int) ([]float32, [][]float64) {
	f32 := make([]float32, rows*cols)
	f64 := make([][]float64, rows)
	rng := uint64(77)
	for i := range f64 {
		f64[i] = make([]float64, cols)
	}
	for i := range f32 {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := float32(rng%1024) / 1024
		f32[i] = v
		f64[i/cols][i%cols] = float64(v)
	}
	return f32, f64
}

func decodeScore(t *testing.T, w *httptest.ResponseRecorder) ScoreResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp ScoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestScoreBinaryFrame: a binary-framed batch answers the same verdicts
// as the identical JSON batch, within the float32 parity budget.
func TestScoreBinaryFrame(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	f32, f64 := frameRows(16, 3)
	jsonResp := decodeScore(t, postJSON(t, s, "/v1/score", scoreBody(f64)))
	binResp := decodeScore(t, postFrame(t, s, "/v1/score", mustFrame32(t, "", 16, 3, f32)))
	if binResp.ModelVersion != jsonResp.ModelVersion {
		t.Fatalf("model_version %d vs %d", binResp.ModelVersion, jsonResp.ModelVersion)
	}
	if len(binResp.Results) != len(jsonResp.Results) {
		t.Fatalf("%d results, want %d", len(binResp.Results), len(jsonResp.Results))
	}
	for i, r := range binResp.Results {
		ref := jsonResp.Results[i]
		if d := math.Abs(r.Prob - ref.Prob); d > 1e-3 {
			t.Errorf("row %d: prob %g vs %g (delta %g)", i, r.Prob, ref.Prob, d)
		}
		if r.Class != ref.Class && math.Abs(ref.Prob-0.5) >= 1e-3 {
			t.Errorf("row %d: confident class flipped (%d vs %d)", i, r.Class, ref.Class)
		}
	}
}

func TestLabelBinaryFrame(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	f32, f64 := frameRows(8, 3)
	jw := postJSON(t, s, "/v1/label", scoreBody(f64))
	bw := postFrame(t, s, "/v1/label", mustFrame32(t, "", 8, 3, f32))
	if jw.Code != http.StatusOK || bw.Code != http.StatusOK {
		t.Fatalf("statuses %d / %d: %s / %s", jw.Code, bw.Code, jw.Body, bw.Body)
	}
	var jr, br LabelResponse
	if err := json.Unmarshal(jw.Body.Bytes(), &jr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bw.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	// The test model's verdicts are far from the boundary on these rows;
	// labels must agree outright.
	if len(br.Labels) != len(jr.Labels) {
		t.Fatalf("%d labels, want %d", len(br.Labels), len(jr.Labels))
	}
	for i := range br.Labels {
		if br.Labels[i] != jr.Labels[i] {
			t.Errorf("row %d: label %d vs %d", i, br.Labels[i], jr.Labels[i])
		}
	}
}

// TestScoreBinaryModelAddressed: the frame's model field routes exactly
// like the JSON "model" field — to the registry's live version, counting
// against that model — and unknown names answer 404 unknown_model.
func TestScoreBinaryModelAddressed(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveTestNet(t, dir, "default.gob", []int{3, 8, 2}, 7)
	altPath, _ := saveTestNet(t, dir, "alt.gob", []int{3, 10, 2}, 23)
	s, err := New(Options{ModelPath: path, RegistryDir: dir + "/reg"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	info, err := s.Registry().Register(registry.RegisterRequest{Name: "alt", Path: altPath})
	if err != nil {
		t.Fatal(err)
	}
	f32, _ := frameRows(4, 3)

	resp := decodeScore(t, postFrame(t, s, "/v1/score", mustFrame32(t, "alt", 4, 3, f32)))
	if resp.ModelVersion == 1 {
		t.Fatalf("model-addressed frame answered by default generation %d", resp.ModelVersion)
	}
	_ = info

	w := postFrame(t, s, "/v1/score", mustFrame32(t, "nope", 4, 3, f32))
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown model: status %d: %s", w.Code, w.Body)
	}
	var env wire.Envelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Code != wire.CodeUnknownModel {
		t.Fatalf("unknown model envelope %+v (err %v), want %s", env, err, wire.CodeUnknownModel)
	}

	// Per-model counters must move for binary traffic like JSON traffic.
	var stats StatsResponse
	sw := httptest.NewRecorder()
	s.ServeHTTP(sw, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if err := json.Unmarshal(sw.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ModelRequests["alt"] != 1 {
		t.Fatalf("model_requests[alt] = %d, want 1 (stats %+v)", stats.ModelRequests["alt"], stats)
	}
}

// TestBinaryErrorTaxonomy walks the refusal matrix of the binary path:
// every malformed, oversized, or mis-typed request maps onto the wire
// taxonomy — no hangs, no panics, no undocumented statuses.
func TestBinaryErrorTaxonomy(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxRows: 4, MaxBodyBytes: 4096})
	good := mustFrame32(t, "", 2, 3, make([]float32, 6))
	nan := make([]float32, 6)
	nan[4] = float32(math.NaN())
	bigBody := mustFrame32(t, "", 400, 3, make([]float32, 1200))

	cases := []struct {
		name     string
		frame    []byte
		ct       string
		status   int
		code     string
		contains string
	}{
		{"garbage", []byte("hello"), wire.ContentTypeRowsF32, 400, wire.CodeBadRequest, "truncated"},
		{"bad magic", append([]byte("XXXX"), good[4:]...), wire.ContentTypeRowsF32, 400, wire.CodeBadRequest, "magic"},
		{"truncated", good[:len(good)-2], wire.ContentTypeRowsF32, 400, wire.CodeBadRequest, "length"},
		{"trailing", append(append([]byte(nil), good...), 9), wire.ContentTypeRowsF32, 400, wire.CodeBadRequest, "length"},
		{"too many rows", mustFrame32(t, "", 5, 3, make([]float32, 15)), wire.ContentTypeRowsF32, 400, wire.CodeBadRequest, "exceeds limit"},
		{"width mismatch", mustFrame32(t, "", 2, 4, make([]float32, 8)), wire.ContentTypeRowsF32, 400, wire.CodeBadRequest, "features"},
		{"non-finite", mustFrame32(t, "", 2, 3, nan), wire.ContentTypeRowsF32, 400, wire.CodeBadRequest, "not finite"},
		{"oversized", bigBody, wire.ContentTypeRowsF32, 413, wire.CodeTooLarge, "exceeds"},
		{"wrong media type", good, "text/plain", 415, wire.CodeUnsupportedMedia, "unsupported Content-Type"},
		{"unparseable media type", good, ";;;", 415, wire.CodeUnsupportedMedia, "unparseable Content-Type"},
	}
	for _, tc := range cases {
		for _, path := range []string{"/v1/score", "/v1/label"} {
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(tc.frame))
			req.Header.Set("Content-Type", tc.ct)
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if w.Code != tc.status {
				t.Fatalf("%s %s: status %d, want %d (%s)", tc.name, path, w.Code, tc.status, w.Body)
			}
			var env wire.Envelope
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
				t.Fatalf("%s %s: non-envelope error body %q", tc.name, path, w.Body)
			}
			if env.Code != tc.code {
				t.Fatalf("%s %s: code %q, want %q", tc.name, path, env.Code, tc.code)
			}
			if !strings.Contains(env.Error, tc.contains) {
				t.Fatalf("%s %s: message %q does not mention %q", tc.name, path, env.Error, tc.contains)
			}
		}
	}

	// The JSON paths must be untouched by the negotiation: explicit JSON
	// content type and no content type both still score.
	_, f64 := frameRows(2, 3)
	if w := postJSON(t, s, "/v1/score", scoreBody(f64)); w.Code != http.StatusOK {
		t.Fatalf("JSON content type: status %d: %s", w.Code, w.Body)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/score", strings.NewReader(scoreBody(f64)))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("absent content type: status %d: %s", w.Code, w.Body)
	}
}

// TestBinaryPrecisionVariants: every BinaryPrecision routes binary frames
// to a working scorer; float64 must answer bit-identically to JSON over
// float32-representable values, and an unknown precision refuses to boot.
func TestBinaryPrecisionVariants(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveTestNet(t, dir, "model.gob", []int{3, 8, 2}, 7)
	f32, f64 := frameRows(6, 3)
	var refResults []ScoreResult
	for _, precision := range []string{serve.PrecisionFloat64, serve.PrecisionFloat32, serve.PrecisionInt8} {
		s, err := New(Options{ModelPath: path, BinaryPrecision: precision})
		if err != nil {
			t.Fatal(err)
		}
		jsonResp := decodeScore(t, postJSON(t, s, "/v1/score", scoreBody(f64)))
		binResp := decodeScore(t, postFrame(t, s, "/v1/score", mustFrame32(t, "", 6, 3, f32)))
		if refResults == nil {
			refResults = jsonResp.Results
		}
		budget := 0.05 // int8
		switch precision {
		case serve.PrecisionFloat64:
			budget = 0 // exact: same engine, exactly representable inputs
		case serve.PrecisionFloat32:
			budget = 1e-3
		}
		for i, r := range binResp.Results {
			if d := math.Abs(r.Prob - refResults[i].Prob); d > budget {
				t.Errorf("%s row %d: prob %g vs %g (delta %g > %g)", precision, i, r.Prob, refResults[i].Prob, d, budget)
			}
		}
		s.Close()
	}
	if _, err := New(Options{ModelPath: path, BinaryPrecision: "float16"}); err == nil {
		t.Fatal("unknown BinaryPrecision accepted")
	}
}

// TestBinaryDefendedFallback: a daemon serving a defended model accepts
// binary frames but answers through the defended float64 path —
// bit-identical to JSON over representable values.
func TestBinaryDefendedFallback(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveTestNet(t, dir, "model.gob", []int{6, 16, 2}, 11)
	chain := defense.Chain{{Kind: defense.KindSqueeze, Bits: 1, Threshold: 0.05}}
	s, err := New(Options{ModelPath: path, Defenses: chain})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	f32, f64 := frameRows(8, 6)
	jsonResp := decodeScore(t, postJSON(t, s, "/v1/score", scoreBody(f64)))
	binResp := decodeScore(t, postFrame(t, s, "/v1/score", mustFrame32(t, "", 8, 6, f32)))
	for i, r := range binResp.Results {
		if r != jsonResp.Results[i] {
			t.Fatalf("row %d: defended binary %+v != JSON %+v", i, r, jsonResp.Results[i])
		}
	}
}

// TestStatsCountersUniform: the fast JSON path, the strict JSON path and
// the binary path all advance the same request/row counters — a request
// is a request no matter how it was framed.
func TestStatsCountersUniform(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	getStats := func() StatsResponse {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
		var resp StatsResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	before := getStats()
	if before.UptimeSeconds <= 0 {
		t.Fatalf("uptime_seconds %g, want > 0", before.UptimeSeconds)
	}
	f32, f64 := frameRows(4, 3)
	// Fast JSON path (canonical body), strict JSON path (whitespace keeps
	// the fast parser honest but is still valid JSON), binary path.
	if w := postJSON(t, s, "/v1/score", scoreBody(f64)); w.Code != 200 {
		t.Fatalf("fast: %d %s", w.Code, w.Body)
	}
	if w := postJSON(t, s, "/v1/score", " \n"+scoreBody(f64)); w.Code != 200 {
		t.Fatalf("strict: %d %s", w.Code, w.Body)
	}
	if w := postFrame(t, s, "/v1/score", mustFrame32(t, "", 4, 3, f32)); w.Code != 200 {
		t.Fatalf("binary: %d", w.Code)
	}
	after := getStats()
	if got := after.Requests - before.Requests; got != 3 {
		t.Fatalf("requests advanced by %d, want 3", got)
	}
	if got := after.Rows - before.Rows; got != 12 {
		t.Fatalf("rows advanced by %d, want 12", got)
	}
	// A rejected request bumps rejected, not requests.
	if w := postFrame(t, s, "/v1/score", []byte("junk")); w.Code != 400 {
		t.Fatalf("junk frame: %d", w.Code)
	}
	final := getStats()
	if final.Requests != after.Requests || final.Rejected != after.Rejected+1 {
		t.Fatalf("rejection accounting: requests %d→%d, rejected %d→%d",
			after.Requests, final.Requests, after.Rejected, final.Rejected)
	}
	// A storeless daemon (no registry) has no results store or miner: the
	// store counters must stay absent-as-zero, never invented.
	if final.ResultsRecords != 0 || final.ResultsBytes != 0 || final.MineJobs != 0 {
		t.Fatalf("storeless daemon reported store counters: records=%d bytes=%d mine=%d",
			final.ResultsRecords, final.ResultsBytes, final.MineJobs)
	}
}

// TestFastPathRowBits: the strict and fast JSON decoders and the binary
// values must agree bit-for-bit on the parsed matrix — pinned through the
// score responses of a served model over tricky float values.
func TestFastPathCountsModelRequests(t *testing.T) {
	// The fast JSON parser handles only default-model bodies, where
	// CountRequest is a no-op today; this pins that it is nevertheless
	// called symmetrically by scoring paths (via the registry instance it
	// would count on a named model — covered in
	// TestScoreBinaryModelAddressed) and that repeated fast-path requests
	// keep the global counter exact.
	s, _ := newTestServer(t, Options{})
	_, f64 := frameRows(1, 3)
	for i := 0; i < 3; i++ {
		if w := postJSON(t, s, "/v1/score", scoreBody(f64)); w.Code != 200 {
			t.Fatalf("request %d: %d %s", i, w.Code, w.Body)
		}
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var resp StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Requests != 3 {
		t.Fatalf("requests = %d, want 3", resp.Requests)
	}
}
