package server

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"malevade/internal/attack"
	"malevade/internal/campaign"
	"malevade/internal/client"
	"malevade/internal/defense"
	"malevade/internal/experiments"
)

// TestE2ERegistryMultiModel is the registry acceptance test: one daemon
// serves a bare detector and a defense-chain-hardened variant of it under
// two registry names. The same rows scored against both through the SDK,
// and one campaign submitted per model, must be bit-identical to the
// equivalent single-model daemons (one bare, one started with the same
// defense chain) — the registry, the model addressing and the named
// campaign targets must all be numerically invisible. A new version of the
// bare model is hot-promoted mid-campaign (same weights, fresh
// generation): every batch stays wholly one generation, and the results
// still match the promotion-free single-model daemon bit for bit. Finally
// the daemon restarts on the same registry directory and serves the
// previously live versions unchanged.
func TestE2ERegistryMultiModel(t *testing.T) {
	lab := experiments.NewLab(experiments.Small)
	defer lab.Close()
	target, err := lab.Target()
	if err != nil {
		t.Fatal(err)
	}
	mal, err := lab.TestMalware()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	targetPath := filepath.Join(dir, "target.gob")
	if err := target.Net.SaveFile(targetPath); err != nil {
		t.Fatal(err)
	}
	chain := defense.Chain{{Kind: defense.KindSqueeze, Bits: 3, Threshold: 0.2}}

	// Reference daemons: the equivalent single-model deployments.
	bareRef, err := New(Options{ModelPath: targetPath})
	if err != nil {
		t.Fatal(err)
	}
	defer bareRef.Close()
	bareTS := httptest.NewServer(bareRef)
	defer bareTS.Close()
	hardRef, err := New(Options{ModelPath: targetPath, Defenses: chain})
	if err != nil {
		t.Fatal(err)
	}
	defer hardRef.Close()
	hardTS := httptest.NewServer(hardRef)
	defer hardTS.Close()

	// The multi-detector daemon: both variants registered by name in one
	// registry-backed process.
	regDir := t.TempDir()
	multi, err := New(Options{ModelPath: targetPath, RegistryDir: regDir})
	if err != nil {
		t.Fatal(err)
	}
	multiTS := httptest.NewServer(multi)
	closed := false
	defer func() {
		if !closed {
			multiTS.Close()
			multi.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	mc := client.New(multiTS.URL)
	if _, err := mc.RegisterModel(ctx, client.RegisterModelRequest{Name: "bare", Path: targetPath}); err != nil {
		t.Fatalf("register bare: %v", err)
	}
	if _, err := mc.RegisterModel(ctx, client.RegisterModelRequest{Name: "hard", Path: targetPath, Defenses: chain}); err != nil {
		t.Fatalf("register hard: %v", err)
	}

	// Score the same rows against both names and against the equivalent
	// single-model daemons: bit-identical verdicts.
	bc := client.New(bareTS.URL)
	hc := client.New(hardTS.URL)
	wantBare, _, err := bc.Score(ctx, mal.X)
	if err != nil {
		t.Fatal(err)
	}
	wantHard, _, err := hc.Score(ctx, mal.X)
	if err != nil {
		t.Fatal(err)
	}
	gotBare, _, err := mc.ScoreModel(ctx, "bare", mal.X)
	if err != nil {
		t.Fatal(err)
	}
	gotHard, _, err := mc.ScoreModel(ctx, "hard", mal.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantBare {
		if gotBare[i] != wantBare[i] {
			t.Fatalf("bare row %d: %+v via registry, %+v via single-model daemon", i, gotBare[i], wantBare[i])
		}
		if gotHard[i] != wantHard[i] {
			t.Fatalf("hard row %d: %+v via registry, %+v via single-model daemon", i, gotHard[i], wantHard[i])
		}
	}
	// The two variants must actually disagree somewhere, or the defended
	// comparison proves nothing.
	differ := false
	for i := range gotBare {
		if gotBare[i] != gotHard[i] {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("bare and defended variants agree on every row; defended comparison is vacuous")
	}

	// One campaign per model on the multi daemon vs the same campaign on
	// each single-model daemon. Crafting is pinned to the same saved file
	// everywhere; population comes from the shared profile; a batch size
	// that doesn't divide the population exercises the ragged final batch.
	specFor := func(name, targetModel string) campaign.Spec {
		return campaign.Spec{
			Name: name,
			Attack: attack.Config{
				Kind: attack.KindJSMA, Theta: 0.1, Gamma: 0.025,
			},
			CraftModelPath: targetPath,
			Profile:        "small",
			TargetModel:    targetModel,
			BatchSize:      7,
		}
	}
	runCampaign := func(c *client.Client, spec campaign.Spec, midway func()) campaign.Snapshot {
		t.Helper()
		snap, err := c.SubmitCampaign(ctx, spec)
		if err != nil {
			t.Fatalf("submit %s: %v", spec.Name, err)
		}
		if midway != nil {
			// Wait for real progress so the promotion lands mid-campaign,
			// then fire it while batches are still being judged.
			for {
				cur, err := c.CampaignSnapshot(ctx, snap.ID, 0)
				if err != nil {
					t.Fatal(err)
				}
				if cur.DoneSamples > 0 || cur.Status.Terminal() {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			midway()
		}
		final, err := c.WaitCampaign(ctx, snap.ID, client.WaitOptions{Interval: 10 * time.Millisecond})
		if err != nil {
			t.Fatalf("wait %s: %v", spec.Name, err)
		}
		if final.Status != campaign.StatusDone {
			t.Fatalf("campaign %s status %s (%s)", spec.Name, final.Status, final.Error)
		}
		return final
	}

	refBare := runCampaign(bc, specFor("ref-bare", ""), nil)
	refHard := runCampaign(hc, specFor("ref-hard", ""), nil)
	// Mid-campaign, register-and-promote a new version of "bare" with the
	// same weights: the generation advances live under the campaign, but
	// the numbers cannot move.
	gotBareCampaign := runCampaign(mc, specFor("multi-bare", "bare"), func() {
		if _, err := mc.RegisterModel(ctx, client.RegisterModelRequest{
			Name: "bare", Path: targetPath, Promote: true,
		}); err != nil {
			t.Fatalf("mid-campaign promote: %v", err)
		}
	})
	gotHardCampaign := runCampaign(mc, specFor("multi-hard", "hard"), nil)

	compare := func(label string, got, want campaign.Snapshot) {
		t.Helper()
		if got.TotalSamples != want.TotalSamples || len(got.Results) != len(want.Results) {
			t.Fatalf("%s: %d/%d results via registry, %d/%d via single-model daemon",
				label, len(got.Results), got.TotalSamples, len(want.Results), want.TotalSamples)
		}
		for i := range got.Results {
			g, w := got.Results[i], want.Results[i]
			if g.Index != w.Index || g.BaselineDetected != w.BaselineDetected ||
				g.Evaded != w.Evaded || g.CraftEvaded != w.CraftEvaded ||
				g.L2 != w.L2 || g.ModifiedFeatures != w.ModifiedFeatures {
				t.Fatalf("%s sample %d: %+v via registry, %+v via single-model daemon", label, i, g, w)
			}
		}
		if got.BaselineDetectionRate != want.BaselineDetectionRate || got.EvasionRate != want.EvasionRate {
			t.Fatalf("%s rates: %v/%v via registry, %v/%v via single-model daemon", label,
				got.BaselineDetectionRate, got.EvasionRate,
				want.BaselineDetectionRate, want.EvasionRate)
		}
	}
	compare("bare campaign", gotBareCampaign, refBare)
	compare("hard campaign", gotHardCampaign, refHard)

	// Zero mixed-generation batches: every batch's samples must share one
	// generation (batches are BatchSize windows of the population).
	batchGen := map[int]int64{}
	for _, r := range gotBareCampaign.Results {
		b := r.Index / 7
		if g, ok := batchGen[b]; ok && g != r.Generation {
			t.Fatalf("batch %d judged by generations %d and %d — mixed-generation batch", b, g, r.Generation)
		}
		batchGen[b] = r.Generation
	}
	if len(gotBareCampaign.Generations) > 1 {
		t.Logf("promotion landed mid-campaign: generations %v, batches %d, numbers unchanged",
			gotBareCampaign.Generations, gotBareCampaign.Batches)
	} else {
		t.Logf("campaign finished within one generation (%v) — promotion landed at a boundary", gotBareCampaign.Generations)
	}

	// Restart: close the daemon (the registry store survives on disk) and
	// reopen on the same directory. The previously live versions —
	// including the mid-campaign-promoted bare v2 and the defended wrap —
	// serve unchanged.
	bareInfo, err := mc.Model(ctx, "bare")
	if err != nil {
		t.Fatal(err)
	}
	if bareInfo.Live != 2 {
		t.Fatalf("bare live version %d after mid-campaign promote, want 2", bareInfo.Live)
	}
	multiTS.Close()
	multi.Close()
	closed = true

	multi2, err := New(Options{ModelPath: targetPath, RegistryDir: regDir})
	if err != nil {
		t.Fatalf("restart on the registry dir: %v", err)
	}
	defer multi2.Close()
	multiTS2 := httptest.NewServer(multi2)
	defer multiTS2.Close()
	mc2 := client.New(multiTS2.URL)

	models, err := mc2.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("restarted daemon lists %d models, want 2", len(models))
	}
	bareAfter, err := mc2.Model(ctx, "bare")
	if err != nil {
		t.Fatal(err)
	}
	if bareAfter.Live != bareInfo.Live || bareAfter.Generation != bareInfo.Generation {
		t.Fatalf("bare after restart: live v%d gen %d, want v%d gen %d",
			bareAfter.Live, bareAfter.Generation, bareInfo.Live, bareInfo.Generation)
	}
	gotBare2, _, err := mc2.ScoreModel(ctx, "bare", mal.X)
	if err != nil {
		t.Fatal(err)
	}
	gotHard2, _, err := mc2.ScoreModel(ctx, "hard", mal.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantBare {
		if gotBare2[i] != wantBare[i] {
			t.Fatalf("bare row %d after restart: %+v, want %+v", i, gotBare2[i], wantBare[i])
		}
		if gotHard2[i] != wantHard[i] {
			t.Fatalf("hard row %d after restart: %+v, want %+v", i, gotHard2[i], wantHard[i])
		}
	}
	t.Logf("registry served both variants bit-identically to single-model daemons, survived a restart (bare live v%d gen %d)",
		bareAfter.Live, bareAfter.Generation)
}
