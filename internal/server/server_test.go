package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"malevade/internal/dataset"
	"malevade/internal/nn"
	"malevade/internal/tensor"
)

// saveTestNet builds a small deterministic MLP and saves it under dir.
func saveTestNet(t testing.TB, dir, name string, dims []int, seed uint64) (string, *nn.Network) {
	t.Helper()
	net, err := nn.NewMLP(nn.MLPConfig{Dims: dims, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path, net
}

func newTestServer(t *testing.T, opts Options) (*Server, *nn.Network) {
	t.Helper()
	if opts.ModelPath == "" {
		path, net := saveTestNet(t, t.TempDir(), "model.gob", []int{3, 8, 2}, 7)
		opts.ModelPath = path
		s, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s, net
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, nil
}

func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func scoreBody(rows [][]float64) string {
	b, err := json.Marshal(ScoreRequest{Rows: rows})
	if err != nil {
		panic(err)
	}
	return string(b)
}

// expectedResults reproduces the server's scoring math directly on the
// network: logits → softmax at temperature → P(malware), argmax class.
func expectedResults(net *nn.Network, x *tensor.Matrix, temp float64) []ScoreResult {
	logits := net.Logits(x)
	out := make([]ScoreResult, logits.Rows)
	probs := make([]float64, logits.Cols)
	for i := range out {
		nn.SoftmaxRow(logits.Row(i), probs, temp)
		out[i] = ScoreResult{Prob: probs[dataset.LabelMalware], Class: logits.RowArgmax(i)}
	}
	return out
}

func TestScoreMatchesDirectInference(t *testing.T) {
	s, net := newTestServer(t, Options{})
	x := tensor.FromRows([][]float64{
		{0.1, 0.5, 0.9},
		{0, 0, 0},
		{1, 1, 1},
	})
	w := postJSON(t, s, "/v1/score", scoreBody([][]float64{x.Row(0), x.Row(1), x.Row(2)}))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp ScoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ModelVersion != 1 {
		t.Fatalf("model_version = %d, want 1", resp.ModelVersion)
	}
	want := expectedResults(net, x, 1)
	if len(resp.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(want))
	}
	for i, r := range resp.Results {
		if r != want[i] {
			t.Errorf("row %d: got %+v, want %+v", i, r, want[i])
		}
	}
}

func TestLabelMatchesPredict(t *testing.T) {
	s, net := newTestServer(t, Options{})
	x := tensor.FromRows([][]float64{{0.2, 0.8, 0.4}, {0.9, 0.1, 0.3}})
	w := postJSON(t, s, "/v1/label", scoreBody([][]float64{x.Row(0), x.Row(1)}))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp LabelResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := net.PredictClass(x)
	for i, l := range resp.Labels {
		if l != want[i] {
			t.Errorf("label %d: got %d, want %d", i, l, want[i])
		}
	}
}

func TestScoreRejectsBadRequests(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxRows: 4, MaxBodyBytes: 1 << 16})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed json", `{"rows": [[0.1,`, http.StatusBadRequest},
		{"not an object", `42`, http.StatusBadRequest},
		{"empty rows", `{"rows": []}`, http.StatusBadRequest},
		{"missing rows", `{}`, http.StatusBadRequest},
		{"unknown field", `{"rowz": [[1,2,3]]}`, http.StatusBadRequest},
		{"ragged row", `{"rows": [[0.1, 0.2, 0.3], [0.1]]}`, http.StatusBadRequest},
		{"wrong width", `{"rows": [[0.1, 0.2]]}`, http.StatusBadRequest},
		{"huge number overflows float64", `{"rows": [[1e999, 0, 0]]}`, http.StatusBadRequest},
		{"string feature", `{"rows": [["a", 0, 0]]}`, http.StatusBadRequest},
		{"null row", `{"rows": [null]}`, http.StatusBadRequest},
		{"trailing data", `{"rows": [[0.1, 0.2, 0.3]]} extra`, http.StatusBadRequest},
		{"too many rows", scoreBody([][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}}), http.StatusBadRequest},
		{"oversized body", `{"rows": [[` + strings.Repeat("0.123456789,", 1<<14) + `0]]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, path := range []string{"/v1/score", "/v1/label"} {
				w := postJSON(t, s, path, tc.body)
				if w.Code != tc.status {
					t.Errorf("%s: status %d, want %d (body %s)", path, w.Code, tc.status, w.Body)
				}
				var e errorResponse
				if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
					t.Errorf("%s: error body not JSON with error field: %s", path, w.Body)
				}
			}
		})
	}
}

func TestScoreRequiresPost(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	for _, path := range []string{"/v1/score", "/v1/label", "/v1/reload"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, w.Code)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.ModelVersion != 1 || h.InDim != 3 {
		t.Fatalf("unexpected health: %+v", h)
	}
}

func TestReloadSwapsModelAndKeepsStats(t *testing.T) {
	dir := t.TempDir()
	pathA, netA := saveTestNet(t, dir, "a.gob", []int{3, 8, 2}, 7)
	pathB, netB := saveTestNet(t, dir, "b.gob", []int{3, 8, 2}, 1234)
	s, _ := newTestServer(t, Options{ModelPath: pathA})

	x := tensor.FromRows([][]float64{{0.3, 0.6, 0.9}})
	body := scoreBody([][]float64{x.Row(0)})

	w := postJSON(t, s, "/v1/score", body)
	var before ScoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &before); err != nil {
		t.Fatal(err)
	}
	if want := expectedResults(netA, x, 1); before.Results[0] != want[0] {
		t.Fatalf("pre-reload result %+v, want %+v", before.Results[0], want[0])
	}

	// Reload to a different model via the endpoint, with an explicit path.
	w = postJSON(t, s, "/v1/reload", fmt.Sprintf(`{"path": %q}`, pathB))
	if w.Code != http.StatusOK {
		t.Fatalf("reload status %d: %s", w.Code, w.Body)
	}
	var rr ReloadResponse
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ModelVersion != 2 || rr.ModelPath != pathB {
		t.Fatalf("reload response %+v", rr)
	}

	w = postJSON(t, s, "/v1/score", body)
	var after ScoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.ModelVersion != 2 {
		t.Fatalf("post-reload model_version %d, want 2", after.ModelVersion)
	}
	if want := expectedResults(netB, x, 1); after.Results[0] != want[0] {
		t.Fatalf("post-reload result %+v, want %+v", after.Results[0], want[0])
	}
	if before.Results[0] == after.Results[0] {
		t.Fatal("models A and B score identically; test can't distinguish versions")
	}

	// Stats are cumulative across the reload: both scoring requests and
	// both engines' row counters are visible.
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 2 || stats.Rows != 2 || stats.Reloads != 1 || stats.ModelVersion != 2 {
		t.Fatalf("stats %+v, want 2 requests / 2 rows / 1 reload / version 2", stats)
	}
}

func TestReloadBadPathKeepsServing(t *testing.T) {
	s, net := newTestServer(t, Options{})
	// A client-supplied bad path is the client's error: 422, not 5xx.
	w := postJSON(t, s, "/v1/reload", `{"path": "/nonexistent/model.gob"}`)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("reload status %d, want 422", w.Code)
	}
	// A wrong-shaped model (non-2-class head) is rejected at load time
	// rather than panicking per request later.
	badModel, _ := saveTestNet(t, t.TempDir(), "one-class.gob", []int{3, 8, 1}, 3)
	w = postJSON(t, s, "/v1/reload", fmt.Sprintf(`{"path": %q}`, badModel))
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("reload of 1-class model: status %d, want 422 (%s)", w.Code, w.Body)
	}
	x := tensor.FromRows([][]float64{{0.1, 0.2, 0.3}})
	w = postJSON(t, s, "/v1/score", scoreBody([][]float64{x.Row(0)}))
	if w.Code != http.StatusOK {
		t.Fatalf("score after failed reload: status %d", w.Code)
	}
	var resp ScoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ModelVersion != 1 {
		t.Fatalf("version %d after failed reload, want 1", resp.ModelVersion)
	}
	if want := expectedResults(net, x, 1); resp.Results[0] != want[0] {
		t.Fatalf("result %+v, want %+v", resp.Results[0], want[0])
	}
}

func TestReloadEmptyBodyReusesConfiguredPath(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	w := postJSON(t, s, "/v1/reload", "")
	if w.Code != http.StatusOK {
		t.Fatalf("reload status %d: %s", w.Code, w.Body)
	}
	var rr ReloadResponse
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ModelVersion != 2 {
		t.Fatalf("version %d, want 2", rr.ModelVersion)
	}
}

func TestCloseAnswers503(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	s.Close()
	s.Close() // idempotent
	w := postJSON(t, s, "/v1/score", `{"rows": [[0.1, 0.2, 0.3]]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("score after Close: status %d, want 503", w.Code)
	}
	if v := s.ModelVersion(); v != 0 {
		t.Fatalf("ModelVersion after Close = %d, want 0", v)
	}
	if _, err := s.Reload(""); err == nil {
		t.Fatal("Reload after Close succeeded")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without ModelPath succeeded")
	}
	if _, err := New(Options{ModelPath: filepath.Join(t.TempDir(), "missing.gob")}); err == nil {
		t.Fatal("New with missing model file succeeded")
	}
	// A corrupt model file must error, not panic.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.gob")
	if err := os.WriteFile(bad, []byte("not a gob model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{ModelPath: bad}); err == nil {
		t.Fatal("New with corrupt model file succeeded")
	}
	// Models without the two-class head are refused at startup.
	oneClass, _ := saveTestNet(t, dir, "one-class.gob", []int{3, 8, 1}, 3)
	if _, err := New(Options{ModelPath: oneClass}); err == nil {
		t.Fatal("New accepted a 1-class model")
	}
}

func TestTemperatureAffectsProbNotClass(t *testing.T) {
	dir := t.TempDir()
	path, net := saveTestNet(t, dir, "m.gob", []int{3, 8, 2}, 7)
	hot, err := New(Options{ModelPath: path, Temperature: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer hot.Close()
	x := tensor.FromRows([][]float64{{0.9, 0.1, 0.5}})
	w := postJSON(t, hot, "/v1/score", scoreBody([][]float64{x.Row(0)}))
	var resp ScoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if want := expectedResults(net, x, 4); resp.Results[0] != want[0] {
		t.Fatalf("T=4 result %+v, want %+v", resp.Results[0], want[0])
	}
}
