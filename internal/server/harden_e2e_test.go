package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"malevade/internal/client"
	"malevade/internal/dataset"
	"malevade/internal/defense"
	"malevade/internal/experiments"
	"malevade/internal/harden"
	"malevade/internal/tensor"
)

// hardenLabTarget trains the Small-profile lab target and saves it where a
// daemon can register it.
func hardenLabTarget(t *testing.T) (string, *experiments.Lab, *dataset.Dataset) {
	t.Helper()
	lab := experiments.NewLab(experiments.Small)
	t.Cleanup(lab.Close)
	target, err := lab.Target()
	if err != nil {
		t.Fatal(err)
	}
	mal, err := lab.TestMalware()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "target.gob")
	if err := target.Net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path, lab, mal
}

// hardenDaemon starts a registry daemon with the target registered as
// "prod" (first version is always promoted live).
func hardenDaemon(t *testing.T, ctx context.Context, targetPath, regDir string, opts harden.Options) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	s, err := New(Options{ModelPath: targetPath, RegistryDir: regDir, Harden: opts})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	c := client.New(ts.URL)
	if _, err := c.RegisterModel(ctx, client.RegisterModelRequest{Name: "prod", Path: targetPath}); err != nil {
		ts.Close()
		s.Close()
		t.Fatalf("register prod: %v", err)
	}
	return s, ts, c
}

// TestE2EHardenMatchesManual is the golden-loop acceptance test: a 2-round
// controller run must be bit-identical — per-round evasion rates, harvested
// rows, dedup counts, promoted versions, and the final model's verdicts —
// to the same loop hand-glued from the public pieces the controller is
// built from: an SDK campaign with KeepRows, HarvestEvasions,
// BuildAdvTrainingSet, AdversarialTraining under RoundTrainConfig, and a
// register-and-promote. The controller adds orchestration and durability;
// it must add no numbers of its own.
func TestE2EHardenMatchesManual(t *testing.T) {
	targetPath, _, mal := hardenLabTarget(t)
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Second)
	defer cancel()

	// One retraining epoch per round: enough to measurably harden, weak
	// enough that round 1 does not collapse evasion to zero outright
	// (profile-strength retraining ends the loop early with no_evasions,
	// leaving nothing for round 2 to chain from).
	hsp := harden.Spec{
		Model:  "prod",
		Attack: attackJSMASmall(),
		Rounds: 2,
		Epochs: 1,
		Seed:   43,
	}
	p, err := experiments.ProfileByName(hsp.Profile)
	if err != nil {
		t.Fatal(err)
	}

	// Daemon A: the controller runs the loop.
	sA, tsA, cA := hardenDaemon(t, ctx, targetPath, t.TempDir(), harden.Options{})
	defer func() { tsA.Close(); sA.Close() }()
	snap, err := cA.SubmitHarden(ctx, hsp)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := cA.WaitHarden(ctx, snap.ID, client.HardenWaitOptions{Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Status != harden.StatusDone || ctrl.StopReason != harden.StopRoundBudget {
		t.Fatalf("controller job: status %s stop %q (%s), want done/round_budget", ctrl.Status, ctrl.StopReason, ctrl.Error)
	}
	if len(ctrl.Rounds) != 2 || ctrl.Campaigns != 3 {
		t.Fatalf("controller ran %d rounds over %d campaigns, want 2/3", len(ctrl.Rounds), ctrl.Campaigns)
	}
	for i, r := range ctrl.Rounds {
		if r.ReattackID == "" {
			t.Fatalf("round %d has no re-attack measurement: %+v", i+1, r)
		}
	}
	// The acceptance headline: hardening reduced the evasion rate.
	if ctrl.Rounds[1].EvasionAfter >= ctrl.Rounds[0].EvasionBefore {
		t.Fatalf("evasion rate did not drop: %.4f → %.4f",
			ctrl.Rounds[0].EvasionBefore, ctrl.Rounds[1].EvasionAfter)
	}

	// Daemon B: the same loop, hand-glued over the SDK. The crafting model
	// is the registered target file itself — the same weights the
	// controller snapshotted from the live version at job start.
	dirB := t.TempDir()
	sB, tsB, cB := hardenDaemon(t, ctx, targetPath, t.TempDir(), harden.Options{})
	defer func() { tsB.Close(); sB.Close() }()
	corpus, err := dataset.Generate(dataset.TableIConfig(p.Seed).Scaled(p.ScaleDivisor))
	if err != nil {
		t.Fatal(err)
	}
	base := corpus.Train

	runManualCampaign := func(round int) float64 {
		t.Helper()
		cs := hsp.CampaignSpec(targetPath)
		cs.Name = fmt.Sprintf("manual round %d", round)
		sub, err := cB.SubmitCampaign(ctx, cs)
		if err != nil {
			t.Fatal(err)
		}
		camp, err := cB.WaitCampaign(ctx, sub.ID, client.WaitOptions{Interval: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if camp.Status.Terminal() && camp.Error != "" {
			t.Fatalf("manual campaign %d: %s", round, camp.Error)
		}
		if round <= len(ctrl.Rounds) {
			want := ctrl.Rounds[round-1]
			if camp.EvasionRate != want.EvasionBefore {
				t.Fatalf("round %d: manual evasion rate %v, controller %v", round, camp.EvasionRate, want.EvasionBefore)
			}
			if camp.BaselineDetectionRate != want.BaselineDetection {
				t.Fatalf("round %d: manual baseline %v, controller %v", round, camp.BaselineDetectionRate, want.BaselineDetection)
			}
			adv := harden.HarvestEvasions(camp)
			if adv == nil || adv.Rows != want.RowsHarvested {
				t.Fatalf("round %d: manual harvested %+v rows, controller %d", round, adv, want.RowsHarvested)
			}
			sets, err := defense.BuildAdvTrainingSet(base, adv)
			if err != nil {
				t.Fatal(err)
			}
			if sets.Duplicates != want.Duplicates {
				t.Fatalf("round %d: manual dedup dropped %d rows, controller %d", round, sets.Duplicates, want.Duplicates)
			}
			cfg := harden.RoundTrainConfig(hsp, p, round)
			if cfg.Seed != want.TrainSeed {
				t.Fatalf("round %d: manual train seed %d, controller %d", round, cfg.Seed, want.TrainSeed)
			}
			hardened, err := defense.AdversarialTraining(sets, cfg)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dirB, fmt.Sprintf("round%d.gob", round))
			if err := hardened.Net.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			info, err := cB.RegisterModel(ctx, client.RegisterModelRequest{Name: "prod", Path: path, Promote: true})
			if err != nil {
				t.Fatal(err)
			}
			if info.Live != ctrl.Versions[round-1] {
				t.Fatalf("round %d: manual promoted v%d, controller v%d", round, info.Live, ctrl.Versions[round-1])
			}
		}
		return camp.EvasionRate
	}

	var rates []float64
	for round := 1; round <= 3; round++ {
		rates = append(rates, runManualCampaign(round))
	}
	// The re-attack chain: campaign r+1's rate is round r's EvasionAfter.
	if ctrl.Rounds[0].EvasionAfter != rates[1] || ctrl.Rounds[1].EvasionAfter != rates[2] {
		t.Fatalf("re-attack chain mismatch: controller afters %v/%v, manual campaigns %v",
			ctrl.Rounds[0].EvasionAfter, ctrl.Rounds[1].EvasionAfter, rates[1:])
	}
	if ctrl.EvasionRate != rates[2] {
		t.Fatalf("controller final rate %v, manual final campaign %v", ctrl.EvasionRate, rates[2])
	}

	// Weight-level identity, observed at the wire: the same probe scored
	// through both daemons' live "prod" must produce bit-identical
	// verdicts, and both registries must sit at the same live version.
	infoA, err := cA.Model(ctx, "prod")
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := cB.Model(ctx, "prod")
	if err != nil {
		t.Fatal(err)
	}
	if infoA.Live != infoB.Live || infoA.Live != ctrl.Versions[len(ctrl.Versions)-1] {
		t.Fatalf("live versions diverge: controller daemon v%d, manual daemon v%d, controller promoted %v",
			infoA.Live, infoB.Live, ctrl.Versions)
	}
	gotA, _, err := cA.ScoreModel(ctx, "prod", mal.X)
	if err != nil {
		t.Fatal(err)
	}
	gotB, _, err := cB.ScoreModel(ctx, "prod", mal.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("probe row %d: controller-hardened %+v, manually-hardened %+v — weights diverged", i, gotA[i], gotB[i])
		}
	}
	t.Logf("controller matched the hand-glued loop bit-for-bit: evasion %.4f → %.4f → %.4f, versions %v",
		rates[0], rates[1], rates[2], ctrl.Versions)
}

// TestHardenPromoteHammer floods a registry model with concurrent scoring
// and generation-pinned label traffic while a hardening job churns
// promotions underneath it: zero dropped requests, per-response generations
// that never run backwards within a client, and the promotion churn
// actually witnessed by the traffic.
func TestHardenPromoteHammer(t *testing.T) {
	targetPath, _, mal := hardenLabTarget(t)
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Second)
	defer cancel()
	s, ts, c := hardenDaemon(t, ctx, targetPath, t.TempDir(), harden.Options{})
	defer func() { ts.Close(); s.Close() }()

	probe := tensor.New(48, mal.X.Cols)
	for i := 0; i < probe.Rows; i++ {
		copy(probe.Row(i), mal.X.Row(i%mal.X.Rows))
	}
	gens := make(map[int64]bool)
	var gensMu sync.Mutex
	seed, err := c.Model(ctx, "prod")
	if err != nil {
		t.Fatal(err)
	}
	gens[seed.Generation] = true

	snap, err := c.SubmitHarden(ctx, harden.Spec{
		Model:  "prod",
		Attack: attackJSMASmall(),
		Rounds: 2,
		Epochs: 1,
		Seed:   43,
	})
	if err != nil {
		t.Fatal(err)
	}

	const hammers = 4
	stop := make(chan struct{})
	errs := make(chan error, hammers)
	var wg sync.WaitGroup
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// A small MaxBatch forces multi-chunk batches, so the pinned
			// label path would surface any response that mixed
			// generations mid-batch.
			hc := client.New(ts.URL)
			hc.MaxBatch = 16
			var lastGen int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := hc.ScoreModel(ctx, "prod", probe); err != nil {
					errs <- fmt.Errorf("hammer %d: score dropped: %w", g, err)
					return
				}
				_, gen, err := hc.LabelVersionModel(ctx, "prod", probe)
				if err != nil {
					errs <- fmt.Errorf("hammer %d: pinned labels dropped: %w", g, err)
					return
				}
				if gen < lastGen {
					errs <- fmt.Errorf("hammer %d: generation ran backwards %d → %d", g, lastGen, gen)
					return
				}
				lastGen = gen
				gensMu.Lock()
				gens[gen] = true
				gensMu.Unlock()
			}
		}(g)
	}

	final, err := c.WaitHarden(ctx, snap.ID, client.HardenWaitOptions{Interval: 20 * time.Millisecond})
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != harden.StatusDone || len(final.Rounds) != 2 {
		t.Fatalf("hardening under load: status %s (%s), %d rounds", final.Status, final.Error, len(final.Rounds))
	}

	// One post-run probe pins the final generation into the witness set;
	// with the pre-run seed generation that guarantees the churn is
	// visible in what the traffic observed.
	_, finalGen, err := c.LabelVersionModel(ctx, "prod", probe)
	if err != nil {
		t.Fatal(err)
	}
	gens[finalGen] = true
	if len(gens) < 2 {
		t.Fatalf("traffic observed generations %v: promotions were not visible", gens)
	}
	info, err := c.Model(ctx, "prod")
	if err != nil {
		t.Fatal(err)
	}
	if info.Live != 3 {
		t.Errorf("live version %d after 2 rounds, want 3", info.Live)
	}
	t.Logf("hammer survived %d generations with zero drops (final live v%d)", len(gens), info.Live)
}

// TestHardenRestartMidJob is the durability acceptance test: kill the
// daemon after the job's first recorded round, restart on the same registry
// directory, and the job must resume from its recorded round — not from
// scratch — and run to completion with the full round ledger.
func TestHardenRestartMidJob(t *testing.T) {
	targetPath, _, _ := hardenLabTarget(t)
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Second)
	defer cancel()
	regDir := t.TempDir()

	sA, tsA, cA := hardenDaemon(t, ctx, targetPath, regDir, harden.Options{})
	snap, err := cA.SubmitHarden(ctx, harden.Spec{
		Model:  "prod",
		Attack: attackJSMASmall(),
		Rounds: 3,
		Epochs: 1,
		Seed:   43,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for round 1 to be durably recorded, then kill the daemon
	// mid-job.
	deadline := time.Now().Add(300 * time.Second)
	for {
		cur, err := cA.HardenSnapshot(ctx, snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Status.Terminal() {
			t.Fatalf("job finished before the restart could land: %+v", cur)
		}
		if len(cur.Rounds) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first round never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	tsA.Close()
	sA.Close()

	// Restart on the same registry dir: the daemon reloads the registry
	// (with round 1's promoted version live) and resumes the job.
	sB, err := New(Options{ModelPath: targetPath, RegistryDir: regDir})
	if err != nil {
		t.Fatalf("restart on registry dir: %v", err)
	}
	tsB := httptest.NewServer(sB)
	defer func() { tsB.Close(); sB.Close() }()
	cB := client.New(tsB.URL)

	final, err := cB.WaitHarden(ctx, snap.ID, client.HardenWaitOptions{Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != harden.StatusDone || final.StopReason != harden.StopRoundBudget {
		t.Fatalf("resumed job: status %s stop %q (%s), want done/round_budget", final.Status, final.StopReason, final.Error)
	}
	if !final.Resumed {
		t.Error("resumed job does not report resumed=true")
	}
	if len(final.Rounds) != 3 {
		t.Fatalf("resumed job recorded %d rounds, want 3", len(final.Rounds))
	}
	for i, r := range final.Rounds {
		if r.Round != i+1 || r.Version != i+2 {
			t.Errorf("round %d ledger: %+v, want round %d promoting v%d", i+1, r, i+1, i+2)
		}
	}
	info, err := cB.Model(ctx, "prod")
	if err != nil {
		t.Fatal(err)
	}
	if info.Live != 4 {
		t.Errorf("live version %d after 3 resumed rounds, want 4", info.Live)
	}
	t.Logf("job %s survived the restart: resumed at round 2, finished %d rounds, live v%d",
		snap.ID, len(final.Rounds), info.Live)
}
