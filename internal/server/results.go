package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"malevade/internal/dataset"
	"malevade/internal/nn"
	"malevade/internal/registry"
	"malevade/internal/store"
	"malevade/internal/tensor"
	"malevade/internal/wire"
)

// The results API serves the durable campaign-results store
// (internal/store) and its historical-attack miner over the daemon:
//
//	GET    /v1/results              store summary: campaigns + counters
//	GET    /v1/results/{id}         one campaign's stored per-sample
//	                                results, cursor-paginated + filtered
//	GET    /v1/results/traffic      the recorded traffic log, paginated
//	POST   /v1/results/{id}/replay  re-score one stored perturbation
//	POST   /v1/mine                 submit a traffic sweep     → 202
//	GET    /v1/mine                 list sweeps
//	GET    /v1/mine/{id}            ranked findings report
//	DELETE /v1/mine/{id}            cancel a queued sweep      → 202
//
// The store only exists when the daemon has a registry (results persist
// under RegistryDir/.results), so every handler first refuses storeless
// daemons with 422 no_store — a refinement distinct from the invalid_spec
// a malformed body earns. Detected on-disk damage answers 500
// store_corrupt, never a panic or a silent truncation.

// requireResults answers false after writing the 422 no_store that
// explains why a registry-less daemon has no results store.
func (s *Server) requireResults(w http.ResponseWriter) bool {
	if s.store == nil {
		writeErrorCode(w, http.StatusUnprocessableEntity, wire.CodeNoStore,
			"daemon has no results store (start with -registry): campaign results persist beside the model registry")
		return false
	}
	return true
}

// storeError maps a store read failure onto the wire taxonomy.
func storeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, store.ErrUnknownCampaign):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, wire.ErrRecordCorrupt):
		writeErrorCode(w, http.StatusInternalServerError, wire.CodeStoreCorrupt, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// queryInt parses a non-negative integer query parameter, defaulting when
// absent.
func queryInt(r *http.Request, key string, def int) (int, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// ResultsListResponse answers GET /v1/results: every stored campaign's
// summary plus the store's size counters.
type ResultsListResponse struct {
	// Campaigns lists stored campaigns in first-stored order (optionally
	// filtered by the "model" query parameter).
	Campaigns []store.CampaignSummary `json:"campaigns"`
	// TrafficRecords counts recorded live-traffic rows.
	TrafficRecords int64 `json:"traffic_records"`
	// Records/Bytes are the store's durable totals across every log.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
}

func (s *Server) handleResultsList(w http.ResponseWriter, r *http.Request) {
	if !s.requireResults(w) {
		return
	}
	campaigns := s.store.Campaigns()
	if model := r.URL.Query().Get("model"); model != "" {
		kept := campaigns[:0]
		for _, c := range campaigns {
			if c.Model == model {
				kept = append(kept, c)
			}
		}
		campaigns = kept
	}
	writeJSON(w, http.StatusOK, ResultsListResponse{
		Campaigns:      campaigns,
		TrafficRecords: s.store.TrafficRecords(),
		Records:        s.store.Records(),
		Bytes:          s.store.Bytes(),
	})
}

// ResultsPage answers GET /v1/results/{id}: one campaign's stored history
// with a cursor-paginated window of its per-sample results.
type ResultsPage struct {
	store.CampaignHistory
	// Total counts the campaign's stored samples before filtering.
	Total int `json:"total"`
	// Cursor echoes the request's position in the unfiltered sample
	// sequence; NextCursor is where the next page starts (absent when
	// this page exhausted the log).
	Cursor     int `json:"cursor"`
	NextCursor int `json:"next_cursor,omitempty"`
}

// TrafficPage answers GET /v1/results/traffic: a cursor-paginated window
// of the recorded traffic log.
type TrafficPage struct {
	// Total counts recorded rows before filtering.
	Total int `json:"total"`
	// Cursor/NextCursor paginate exactly like ResultsPage.
	Cursor     int `json:"cursor"`
	NextCursor int `json:"next_cursor,omitempty"`
	// Rows is the window, in record order.
	Rows []store.TrafficRow `json:"rows"`
}

// resultsPageLimit is the default (and maximum) page size of the results
// and traffic views; clients page with cursor/limit.
const resultsPageLimit = 1024

func (s *Server) handleResultsGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireResults(w) {
		return
	}
	id := r.PathValue("id")
	cursor, ok := queryInt(r, "cursor", 0)
	if !ok {
		writeError(w, http.StatusBadRequest, "cursor must be a non-negative integer")
		return
	}
	limit, ok := queryInt(r, "limit", resultsPageLimit)
	if !ok {
		writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
		return
	}
	if limit == 0 || limit > resultsPageLimit {
		limit = resultsPageLimit
	}
	if id == "traffic" {
		s.serveTrafficPage(w, r, cursor, limit)
		return
	}
	h, err := s.store.Campaign(id)
	if err != nil {
		storeError(w, err)
		return
	}
	q := r.URL.Query()
	var genFilter *int64
	if raw := q.Get("generation"); raw != "" {
		g, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "generation must be an integer")
			return
		}
		genFilter = &g
	}
	flipsOnly := q.Get("flips") == "true"

	page := ResultsPage{CampaignHistory: h, Total: len(h.Samples), Cursor: cursor}
	all := h.Samples
	page.CampaignHistory.Samples = nil
	if cursor > len(all) {
		cursor = len(all)
	}
	next := cursor
	for _, sr := range all[cursor:] {
		next++
		if genFilter != nil && sr.Generation != *genFilter {
			continue
		}
		// A verdict flip is the campaign's success case: the target
		// detected the original but passed the adversarial variant.
		if flipsOnly && !(sr.BaselineDetected && sr.Evaded) {
			continue
		}
		page.CampaignHistory.Samples = append(page.CampaignHistory.Samples, sr)
		if len(page.CampaignHistory.Samples) == limit {
			break
		}
	}
	if next < len(all) {
		page.NextCursor = next
	}
	writeJSON(w, http.StatusOK, page)
}

// serveTrafficPage renders the traffic view of GET /v1/results/traffic,
// with model / generation / score-band ("min_prob", "max_prob") filters.
func (s *Server) serveTrafficPage(w http.ResponseWriter, r *http.Request, cursor, limit int) {
	rows, err := s.store.Traffic()
	if err != nil {
		storeError(w, err)
		return
	}
	q := r.URL.Query()
	model := q.Get("model")
	filterModel := q.Has("model")
	var genFilter *int64
	if raw := q.Get("generation"); raw != "" {
		g, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "generation must be an integer")
			return
		}
		genFilter = &g
	}
	parseProb := func(key string, def float64) (float64, bool) {
		raw := q.Get(key)
		if raw == "" {
			return def, true
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 || v > 1 {
			return 0, false
		}
		return v, true
	}
	minProb, ok := parseProb("min_prob", 0)
	if !ok {
		writeError(w, http.StatusBadRequest, "min_prob must lie in [0, 1]")
		return
	}
	maxProb, ok := parseProb("max_prob", 1)
	if !ok {
		writeError(w, http.StatusBadRequest, "max_prob must lie in [0, 1]")
		return
	}
	bandFiltered := q.Has("min_prob") || q.Has("max_prob")

	page := TrafficPage{Total: len(rows), Cursor: cursor, Rows: []store.TrafficRow{}}
	if cursor > len(rows) {
		cursor = len(rows)
	}
	next := cursor
	for _, row := range rows[cursor:] {
		next++
		if filterModel && row.Model != model {
			continue
		}
		if genFilter != nil && row.Generation != *genFilter {
			continue
		}
		if bandFiltered && (!row.HasProb || row.Prob < minProb || row.Prob > maxProb) {
			continue
		}
		page.Rows = append(page.Rows, row)
		if len(page.Rows) == limit {
			break
		}
	}
	if next < len(rows) {
		page.NextCursor = next
	}
	writeJSON(w, http.StatusOK, page)
}

// ReplayRequest asks POST /v1/results/{id}/replay to re-score one stored
// adversarial perturbation. Model/Version select the judge: empty Model
// replays against the daemon's current default model; a named model
// replays against the registry's retained Version of it (0 = its live
// version) — deterministic re-evaluation of a stored attack against any
// model the daemon still holds.
type ReplayRequest struct {
	Index   int    `json:"index"`
	Model   string `json:"model,omitempty"`
	Version int    `json:"version,omitempty"`
}

// ReplayResponse reports the replayed verdict next to the stored one.
type ReplayResponse struct {
	// ID / Index identify the replayed sample.
	ID    string `json:"id"`
	Index int    `json:"index"`
	// Model / Version echo the judge that re-scored it (Version only for
	// registry-addressed replays); ModelVersion is the default slot's
	// generation when no model was named.
	Model        string `json:"model,omitempty"`
	Version      int    `json:"version,omitempty"`
	ModelVersion int64  `json:"model_version,omitempty"`
	// Prob / Class / Evaded are the replayed verdict (registry replays
	// score the raw stored network of that version; the default-slot
	// replay travels the served path, defenses included).
	Prob   float64 `json:"prob"`
	Class  int     `json:"class"`
	Evaded bool    `json:"evaded"`
	// StoredGeneration / StoredEvaded recall the original verdict, so a
	// replay reads as a before/after pair.
	StoredGeneration int64 `json:"stored_generation"`
	StoredEvaded     bool  `json:"stored_evaded"`
}

func (s *Server) handleResultsReplay(w http.ResponseWriter, r *http.Request) {
	if !s.requireResults(w) {
		return
	}
	id := r.PathValue("id")
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req ReplayRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return
	}
	if req.Index < 0 || req.Version < 0 {
		writeError(w, http.StatusBadRequest, "index and version must be non-negative")
		return
	}
	sr, err := s.store.Sample(id, req.Index)
	if err != nil {
		storeError(w, err)
		return
	}
	if len(sr.Adversarial) == 0 {
		writeError(w, http.StatusUnprocessableEntity,
			"campaign %s did not retain adversarial rows (submit with keep_rows to enable replay)", id)
		return
	}
	x := tensor.FromRows([][]float64{sr.Adversarial})
	resp := ReplayResponse{
		ID: id, Index: req.Index, Model: req.Model,
		StoredGeneration: sr.Generation, StoredEvaded: sr.Evaded,
	}
	if req.Model == "" {
		m := s.acquire()
		if m == nil {
			writeError(w, http.StatusServiceUnavailable, "server is shut down")
			return
		}
		defer s.release(m)
		if inDim := m.Scorer.InDim(); x.Cols != inDim {
			writeError(w, http.StatusUnprocessableEntity,
				"stored row has %d features, current model expects %d", x.Cols, inDim)
			return
		}
		resp.ModelVersion = m.Generation
		if m.Det != nil {
			ps, classes := detectorVerdicts(m.Det, x)
			resp.Prob, resp.Class = ps[0], classes[0]
		} else {
			logits := m.Scorer.Logits(x)
			probs := make([]float64, logits.Cols)
			nn.SoftmaxRow(logits.Row(0), probs, s.opts.Temperature)
			resp.Prob, resp.Class = probs[dataset.LabelMalware], logits.RowArgmax(0)
		}
	} else {
		net, ver, err := s.registry.LoadVersion(req.Model, req.Version)
		switch {
		case err == nil:
		case errors.Is(err, registry.ErrUnknownModel):
			writeErrorCode(w, http.StatusNotFound, wire.CodeUnknownModel, "%v", err)
			return
		case errors.Is(err, registry.ErrVersionConflict):
			writeErrorCode(w, http.StatusConflict, wire.CodeVersionConflict, "%v", err)
			return
		default:
			writeErrorCode(w, http.StatusServiceUnavailable, wire.CodeUnavailable, "%v", err)
			return
		}
		if inDim := net.InDim(); x.Cols != inDim {
			writeError(w, http.StatusUnprocessableEntity,
				"stored row has %d features, model %q expects %d", x.Cols, req.Model, inDim)
			return
		}
		resp.Version = ver
		logits := net.Logits(x)
		probs := make([]float64, logits.Cols)
		nn.SoftmaxRow(logits.Row(0), probs, s.opts.Temperature)
		resp.Prob, resp.Class = probs[dataset.LabelMalware], logits.RowArgmax(0)
	}
	resp.Evaded = resp.Class == dataset.LabelClean
	writeJSON(w, http.StatusOK, resp)
}

// requireMine answers false after writing the 422 no_store that explains
// why a storeless daemon has no miner.
func (s *Server) requireMine(w http.ResponseWriter) bool {
	if s.miner == nil {
		writeErrorCode(w, http.StatusUnprocessableEntity, wire.CodeNoStore,
			"daemon has no results store (start with -registry): mining sweeps its recorded traffic")
		return false
	}
	return true
}

func (s *Server) handleMineSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.requireMine(w) {
		return
	}
	// An entirely empty body sweeps with the defaults; anything present
	// must be a valid spec.
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var spec store.MineSpec
	if err := dec.Decode(&spec); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	} else if err == nil && dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return
	}
	id, err := s.miner.Submit(spec)
	if err != nil {
		status := http.StatusUnprocessableEntity
		code := wire.CodeInvalidSpec
		switch {
		case errors.Is(err, store.ErrMineQueueFull):
			status, code = http.StatusTooManyRequests, wire.CodeQueueFull
		case errors.Is(err, store.ErrMinerClosed):
			status, code = http.StatusServiceUnavailable, wire.CodeUnavailable
		}
		writeErrorCode(w, status, code, "%v", err)
		return
	}
	snap, err := s.miner.Get(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, snap)
}

// MineList answers GET /v1/mine.
type MineList struct {
	Jobs []store.MineSnapshot `json:"jobs"`
}

func (s *Server) handleMineList(w http.ResponseWriter, r *http.Request) {
	if !s.requireMine(w) {
		return
	}
	writeJSON(w, http.StatusOK, MineList{Jobs: s.miner.List()})
}

func (s *Server) handleMineGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireMine(w) {
		return
	}
	snap, err := s.miner.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown mine job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleMineCancel(w http.ResponseWriter, r *http.Request) {
	if !s.requireMine(w) {
		return
	}
	snap, err := s.miner.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown mine job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusAccepted, snap)
}
