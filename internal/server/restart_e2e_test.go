package server

// The kill/restart e2e for the durable results store: a real daemon
// process (this test binary re-executed) is SIGKILLed mid-campaign, then a
// fresh daemon reopens the same registry directory and must serve every
// sample the killed process had committed — bit-identically, with no
// duplicates — mark the interrupted campaign failed, and continue the
// campaign id sequence past the stored ones. This is the one store test
// that crosses a real process boundary; the in-process recovery matrix
// lives in internal/store.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"malevade/internal/attack"
	"malevade/internal/campaign"
	"malevade/internal/nn"
)

// TestHelperResultsDaemon is not a test: it is the daemon process
// TestE2EResultsRestartKill spawns and SIGKILLs. It serves a registry
// daemon on a kernel-assigned port and prints the address on stdout.
func TestHelperResultsDaemon(t *testing.T) {
	if os.Getenv("MALEVADE_HELPER_RESULTS") != "1" {
		t.Skip("helper process for TestE2EResultsRestartKill")
	}
	dir := os.Getenv("MALEVADE_HELPER_DIR")
	srv, err := New(Options{ModelPath: filepath.Join(dir, "model.gob"), RegistryDir: dir})
	if err != nil {
		t.Fatalf("helper: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("helper: %v", err)
	}
	fmt.Printf("HELPER_ADDR %s\n", ln.Addr())
	// Serve until the parent SIGKILLs us: the whole point is that no
	// graceful shutdown path runs.
	if err := http.Serve(ln, srv); err != nil {
		t.Fatalf("helper: %v", err)
	}
}

func TestE2EResultsRestartKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon process")
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.gob")
	mlp, err := nn.NewMLP(nn.MLPConfig{Dims: []int{7, 16, 2}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := mlp.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperResultsDaemon$", "-test.timeout=120s")
	cmd.Env = append(os.Environ(), "MALEVADE_HELPER_RESULTS=1", "MALEVADE_HELPER_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	var addr string
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		if a, ok := strings.CutPrefix(scanner.Text(), "HELPER_ADDR "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("helper daemon never printed its address (scan err %v)", scanner.Err())
	}
	base := "http://" + addr

	// Submit a long campaign: 400 rows in batches of 4, each batch
	// committed and fsynced into the store as it lands.
	spec := campaign.Spec{
		Name:      "restart-kill",
		Attack:    attack.Config{Kind: attack.KindJSMA, Theta: 0.2, Gamma: 0.3},
		Rows:      testCampaignRows(400, 7, 11),
		BatchSize: 4,
		KeepRows:  true,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var snap campaign.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}

	// Poll the store-backed results endpoint until enough samples are
	// durably committed, keeping the last page we saw before the kill.
	var pre ResultsPage
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("campaign never committed 20 samples (last total %d)", pre.Total)
		}
		r, err := http.Get(base + "/v1/results/" + snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		var page ResultsPage
		err = json.NewDecoder(r.Body).Decode(&page)
		r.Body.Close()
		if err != nil || r.StatusCode != http.StatusOK {
			t.Fatalf("results poll: status %d err %v", r.StatusCode, err)
		}
		if page.Status.Terminal() {
			t.Fatalf("campaign finished before the kill (status %s); raise the population", page.Status)
		}
		if page.Total >= 20 {
			pre = page
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// SIGKILL mid-stream: no Close, no flush, no graceful anything.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	// A fresh daemon on the same registry dir must recover the store.
	srv, err := New(Options{ModelPath: modelPath, RegistryDir: dir})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer srv.Close()

	var post ResultsPage
	decodeInto(t, getPath(t, srv, "/v1/results/"+snap.ID), &post)
	if post.Status != campaign.StatusFailed || !post.Recovered {
		t.Fatalf("recovered campaign: status %s recovered %v, want failed/true", post.Status, post.Recovered)
	}
	if !strings.Contains(post.Error, "interrupted") {
		t.Fatalf("recovered campaign error %q, want interrupted marker", post.Error)
	}
	// Every sample the killed process served back must survive — same
	// order, bit-identical — and no index may appear twice.
	if post.Total < len(pre.Samples) {
		t.Fatalf("recovered %d samples, killed daemon had served %d", post.Total, len(pre.Samples))
	}
	seen := make(map[int]bool, post.Total)
	for _, s := range post.Samples {
		if seen[s.Index] {
			t.Fatalf("sample index %d recovered twice", s.Index)
		}
		seen[s.Index] = true
	}
	for i, want := range pre.Samples {
		if !reflect.DeepEqual(post.Samples[i], want) {
			t.Fatalf("sample %d drifted across the kill:\npre:  %+v\npost: %+v", i, want, post.Samples[i])
		}
	}

	// The id sequence continues past the stored campaigns instead of
	// reissuing c000001.
	next := submitCampaign(t, srv, campaign.Spec{
		Name:   "post-restart",
		Attack: attack.Config{Kind: attack.KindJSMA, Theta: 0.2, Gamma: 0.3},
		Rows:   testCampaignRows(3, 7, 13),
	})
	if next.ID != "c000002" {
		t.Fatalf("post-restart campaign id %s, want c000002", next.ID)
	}
	if fin := awaitCampaign(t, srv, next.ID); fin.Status != campaign.StatusDone {
		t.Fatalf("post-restart campaign: %s (%s)", fin.Status, fin.Error)
	}
	var list ResultsListResponse
	decodeInto(t, getPath(t, srv, "/v1/results"), &list)
	if len(list.Campaigns) != 2 {
		t.Fatalf("store lists %d campaigns after restart, want 2", len(list.Campaigns))
	}
}
