package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"malevade/internal/attack"
	"malevade/internal/campaign"
	"malevade/internal/store"
	"malevade/internal/tensor"
	"malevade/internal/wire"
)

func getPath(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func decodeInto(t *testing.T, w *httptest.ResponseRecorder, out any) {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
		t.Fatal(err)
	}
}

// TestResultsRequireStore: a storeless daemon (no registry) refuses every
// results/mine route with 422 no_store — the refinement that tells clients
// to restart with -registry, not to fix their spec.
func TestResultsRequireStore(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	routes := []struct{ method, path string }{
		{http.MethodGet, "/v1/results"},
		{http.MethodGet, "/v1/results/c000001"},
		{http.MethodGet, "/v1/results/traffic"},
		{http.MethodPost, "/v1/results/c000001/replay"},
		{http.MethodPost, "/v1/mine"},
		{http.MethodGet, "/v1/mine"},
		{http.MethodGet, "/v1/mine/m000001"},
		{http.MethodDelete, "/v1/mine/m000001"},
	}
	for _, rt := range routes {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(rt.method, rt.path, nil))
		if w.Code != http.StatusUnprocessableEntity {
			t.Fatalf("%s %s: status %d, want 422", rt.method, rt.path, w.Code)
		}
		var env wire.Envelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		if env.Code != wire.CodeNoStore {
			t.Fatalf("%s %s: code %q, want %q", rt.method, rt.path, env.Code, wire.CodeNoStore)
		}
	}
}

// TestResultsAPILifecycle: a campaign streamed through the daemon's sink is
// served back by /v1/results with filters, pagination and per-sample
// replay agreeing with the engine's own terminal snapshot.
func TestResultsAPILifecycle(t *testing.T) {
	s, net := newTestServer(t, Options{RegistryDir: t.TempDir()})
	sp := campaign.Spec{
		Name:     "results-api",
		Attack:   attack.Config{Kind: attack.KindJSMA, Theta: 0.2, Gamma: 0.3},
		Rows:     testCampaignRows(10, net.InDim(), 5),
		KeepRows: true,
	}
	final := awaitCampaign(t, s, submitCampaign(t, s, sp).ID)
	if final.Status != campaign.StatusDone {
		t.Fatalf("campaign ended %s (%s)", final.Status, final.Error)
	}

	var list ResultsListResponse
	decodeInto(t, getPath(t, s, "/v1/results"), &list)
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != final.ID {
		t.Fatalf("results list %+v, want campaign %s", list.Campaigns, final.ID)
	}
	if list.Campaigns[0].Samples != 10 || list.Records < 12 || list.Bytes <= 0 {
		t.Fatalf("list counters: %+v records=%d bytes=%d", list.Campaigns[0], list.Records, list.Bytes)
	}
	// The model filter excludes campaigns that targeted other models.
	decodeInto(t, getPath(t, s, "/v1/results?model=nope"), &list)
	if len(list.Campaigns) != 0 {
		t.Fatalf("model filter kept %d campaigns", len(list.Campaigns))
	}

	var page ResultsPage
	decodeInto(t, getPath(t, s, "/v1/results/"+final.ID), &page)
	if page.Total != 10 || len(page.Samples) != 10 || page.NextCursor != 0 {
		t.Fatalf("full page: total=%d got=%d next=%d", page.Total, len(page.Samples), page.NextCursor)
	}
	// The stored stream must match the engine's snapshot exactly — same
	// verdicts, same generations, same ordering.
	for i, sr := range page.Samples {
		want := final.Results[i]
		if sr.Index != want.Index || sr.Generation != want.Generation ||
			sr.Evaded != want.Evaded || sr.BaselineDetected != want.BaselineDetected ||
			len(sr.Adversarial) != len(want.Adversarial) {
			t.Fatalf("stored sample %d drifted:\n got %+v\nwant %+v", i, sr, want)
		}
	}

	// Cursor pagination walks the full set without duplicates or gaps.
	var walked int
	cursor := 0
	for {
		var p ResultsPage
		decodeInto(t, getPath(t, s, fmt.Sprintf("/v1/results/%s?cursor=%d&limit=3", final.ID, cursor)), &p)
		for _, sr := range p.Samples {
			if sr.Index != walked {
				t.Fatalf("pagination out of order: sample %d at position %d", sr.Index, walked)
			}
			walked++
		}
		if p.NextCursor == 0 {
			break
		}
		cursor = p.NextCursor
	}
	if walked != 10 {
		t.Fatalf("pagination walked %d samples, want 10", walked)
	}

	// Filters: verdict flips and generation.
	wantFlips := 0
	for _, r := range final.Results {
		if r.BaselineDetected && r.Evaded {
			wantFlips++
		}
	}
	var flipsPage ResultsPage
	decodeInto(t, getPath(t, s, "/v1/results/"+final.ID+"?flips=true"), &flipsPage)
	if len(flipsPage.Samples) != wantFlips {
		t.Fatalf("flips filter: %d samples, want %d", len(flipsPage.Samples), wantFlips)
	}
	var genPage ResultsPage
	decodeInto(t, getPath(t, s, "/v1/results/"+final.ID+"?generation=99"), &genPage)
	if len(genPage.Samples) != 0 {
		t.Fatalf("generation=99 kept %d samples", len(genPage.Samples))
	}

	// Error surface: unknown id → 404, malformed cursor → 400.
	if w := getPath(t, s, "/v1/results/c999999"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown campaign: %d", w.Code)
	}
	if w := getPath(t, s, "/v1/results/"+final.ID+"?cursor=-1"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad cursor: %d", w.Code)
	}

	// Replay: re-scoring a stored perturbation against the current default
	// model must agree with direct inference on the stored row.
	var idx int = -1
	for _, r := range final.Results {
		if len(r.Adversarial) > 0 {
			idx = r.Index
			break
		}
	}
	if idx < 0 {
		t.Fatal("no stored adversarial rows despite KeepRows")
	}
	w := postJSON(t, s, "/v1/results/"+final.ID+"/replay", fmt.Sprintf(`{"index":%d}`, idx))
	var rep ReplayResponse
	decodeInto(t, w, &rep)
	decodeInto(t, getPath(t, s, "/v1/results/"+final.ID), &page)
	adv := page.Samples
	want := expectedResults(net, tensor.FromRows([][]float64{adv[idx].Adversarial}), 1)[0]
	if rep.Prob != want.Prob || rep.Class != want.Class {
		t.Fatalf("replay verdict (%v, %d) != direct inference (%v, %d)", rep.Prob, rep.Class, want.Prob, want.Class)
	}
	if rep.StoredGeneration != adv[idx].Generation || rep.StoredEvaded != adv[idx].Evaded {
		t.Fatalf("replay stored echo drifted: %+v vs %+v", rep, adv[idx])
	}
	if rep.ModelVersion != 1 {
		t.Fatalf("replay model_version %d, want 1", rep.ModelVersion)
	}

	// Replay error surface: missing sample → 422ish error, bad model → 404.
	if w := postJSON(t, s, "/v1/results/"+final.ID+"/replay", `{"index":12345}`); w.Code == http.StatusOK {
		t.Fatal("replay of unknown index succeeded")
	}
	if w := postJSON(t, s, "/v1/results/"+final.ID+"/replay",
		fmt.Sprintf(`{"index":%d,"model":"ghost"}`, idx)); w.Code != http.StatusNotFound {
		t.Fatalf("replay against unknown model: %d, want 404", w.Code)
	}
	if w := postJSON(t, s, "/v1/results/"+final.ID+"/replay", `{"index":0,"bogus":1}`); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", w.Code)
	}
}

// TestReplayWithoutKeptRows: campaigns submitted without KeepRows cannot
// replay — the daemon explains rather than serving an empty vector.
func TestReplayWithoutKeptRows(t *testing.T) {
	s, net := newTestServer(t, Options{RegistryDir: t.TempDir()})
	sp := campaign.Spec{
		Attack: attack.Config{Kind: attack.KindFGSM, Theta: 0.1},
		Rows:   testCampaignRows(2, net.InDim(), 3),
	}
	final := awaitCampaign(t, s, submitCampaign(t, s, sp).ID)
	w := postJSON(t, s, "/v1/results/"+final.ID+"/replay", `{"index":0}`)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("replay without kept rows: %d, want 422", w.Code)
	}
}

// TestTrafficRecordingAndMining: with -record sampling on, served score and
// label traffic lands in the store, pages back with filters, and mines.
func TestTrafficRecordingAndMining(t *testing.T) {
	s, _ := newTestServer(t, Options{RegistryDir: t.TempDir(), RecordTraffic: 1})
	f32, f64 := frameRows(4, 3)
	if w := postJSON(t, s, "/v1/score", scoreBody(f64)); w.Code != 200 {
		t.Fatalf("score: %d %s", w.Code, w.Body)
	}
	if w := postFrame(t, s, "/v1/score", mustFrame32(t, "", 4, 3, f32)); w.Code != 200 {
		t.Fatalf("binary score: %d", w.Code)
	}
	if w := postJSON(t, s, "/v1/label", scoreBody(f64[:2])); w.Code != 200 {
		t.Fatalf("label: %d %s", w.Code, w.Body)
	}

	var page TrafficPage
	decodeInto(t, getPath(t, s, "/v1/results/traffic"), &page)
	if page.Total != 10 {
		t.Fatalf("recorded %d rows, want 10 (4 JSON + 4 binary + 2 label)", page.Total)
	}
	score, label := 0, 0
	for _, row := range page.Rows {
		switch row.Endpoint {
		case "score":
			if !row.HasProb {
				t.Fatalf("score row without prob: %+v", row)
			}
			score++
		case "label":
			if row.HasProb {
				t.Fatalf("label row with prob: %+v", row)
			}
			label++
		}
		if len(row.Row) != 3 || row.Generation != 1 {
			t.Fatalf("recorded row malformed: %+v", row)
		}
	}
	if score != 8 || label != 2 {
		t.Fatalf("recorded %d score + %d label rows, want 8 + 2", score, label)
	}

	// The binary path records the same float values as the JSON path: the
	// frame rows are exactly float32-representable, so dedup by identical
	// vector groups JSON and binary recordings of the same row together.
	decodeInto(t, getPath(t, s, "/v1/results/traffic?min_prob=0&max_prob=1"), &page)
	if len(page.Rows) != 8 {
		t.Fatalf("prob band [0,1] kept %d rows, want the 8 score rows", len(page.Rows))
	}
	decodeInto(t, getPath(t, s, "/v1/results/traffic?generation=99"), &page)
	if len(page.Rows) != 0 {
		t.Fatalf("generation filter kept %d rows", len(page.Rows))
	}
	if w := getPath(t, s, "/v1/results/traffic?min_prob=2"); w.Code != http.StatusBadRequest {
		t.Fatalf("min_prob=2: %d, want 400", w.Code)
	}

	// Pagination over traffic.
	decodeInto(t, getPath(t, s, "/v1/results/traffic?limit=6"), &page)
	if len(page.Rows) != 6 || page.NextCursor != 6 {
		t.Fatalf("traffic page: %d rows next=%d", len(page.Rows), page.NextCursor)
	}
	var tail TrafficPage
	decodeInto(t, getPath(t, s, "/v1/results/traffic?cursor=6"), &tail)
	if len(tail.Rows) != 4 || tail.NextCursor != 0 {
		t.Fatalf("traffic tail: %d rows next=%d", len(tail.Rows), tail.NextCursor)
	}

	// Mining over the recorded traffic: the widest band sweeps everything
	// near the boundary; the job runs to done and ranks deterministically.
	w := postJSON(t, s, "/v1/mine", `{"name":"api-sweep","band":0.5}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("mine submit: %d %s", w.Code, w.Body)
	}
	var snap store.MineSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		decodeInto(t, getPath(t, s, "/v1/mine/"+snap.ID), &snap)
		if snap.Status.Terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if snap.Status != "done" || snap.Swept != 10 {
		t.Fatalf("mine %s: status %s swept %d, want done/10", snap.ID, snap.Status, snap.Swept)
	}
	for i, f := range snap.Findings {
		if f.Rank != i+1 || len(f.Row) != 3 {
			t.Fatalf("finding %d malformed: %+v", i, f)
		}
	}

	var ml MineList
	decodeInto(t, getPath(t, s, "/v1/mine"), &ml)
	if len(ml.Jobs) != 1 || ml.Jobs[0].ID != snap.ID || ml.Jobs[0].Findings != nil {
		t.Fatalf("mine list %+v", ml.Jobs)
	}

	// Mine error surface.
	if w := postJSON(t, s, "/v1/mine", `{"band":0.7}`); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("band=0.7: %d, want 422", w.Code)
	}
	if w := postJSON(t, s, "/v1/mine", `{"bogus":true}`); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", w.Code)
	}
	if w := getPath(t, s, "/v1/mine/m999999"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", w.Code)
	}
	wDel := httptest.NewRecorder()
	s.ServeHTTP(wDel, httptest.NewRequest(http.MethodDelete, "/v1/mine/m999999", nil))
	if wDel.Code != http.StatusNotFound {
		t.Fatalf("cancel unknown job: %d, want 404", wDel.Code)
	}

	// /v1/stats surfaces the store counters.
	var stats StatsResponse
	decodeInto(t, getPath(t, s, "/v1/stats"), &stats)
	if stats.ResultsRecords < 10 || stats.ResultsBytes <= 0 || stats.MineJobs != 1 {
		t.Fatalf("stats store counters: records=%d bytes=%d mine=%d",
			stats.ResultsRecords, stats.ResultsBytes, stats.MineJobs)
	}
}

// TestTrafficSamplingRate: RecordTraffic=N keeps every Nth row, so
// production sampling bounds store growth deterministically.
func TestTrafficSamplingRate(t *testing.T) {
	s, _ := newTestServer(t, Options{RegistryDir: t.TempDir(), RecordTraffic: 2})
	_, f64 := frameRows(6, 3)
	if w := postJSON(t, s, "/v1/score", scoreBody(f64)); w.Code != 200 {
		t.Fatalf("score: %d %s", w.Code, w.Body)
	}
	var page TrafficPage
	decodeInto(t, getPath(t, s, "/v1/results/traffic"), &page)
	if page.Total != 3 {
		t.Fatalf("1-in-2 sampling recorded %d of 6 rows, want 3", page.Total)
	}
}
