package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"malevade/internal/obs"
)

// scrape GETs /metrics through the full middleware-wrapped handler and
// returns the parsed samples plus the raw exposition text.
func scrape(t *testing.T, s *Server) (map[string]float64, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("GET /metrics Content-Type %q, want %q", got, obs.ContentType)
	}
	raw := w.Body.Bytes()
	samples, err := obs.ParseText(raw)
	if err != nil {
		t.Fatalf("parsing scrape: %v", err)
	}
	// Unlabeled metrics only — labeled series would collide on name, and
	// the parity assertions below are all against unlabeled families.
	out := make(map[string]float64)
	for _, s := range samples {
		if len(s.Labels) == 0 {
			out[s.Name] = s.Value
		}
	}
	return out, raw
}

// TestE2EMetricsStatsParity drives traffic through a registry-backed
// daemon, then checks GET /metrics field-for-field against /v1/stats:
// the tentpole contract is that the JSON view is a rendering of the same
// sources the exposition reads, so the two can never disagree at
// quiescence. The scrape must also be lint-clean under the same checker
// tools/metriclint ships.
func TestE2EMetricsStatsParity(t *testing.T) {
	dir := t.TempDir()
	s, _ := newTestServer(t, Options{RegistryDir: dir + "/registry"})

	// Served traffic, a rejection, and a reload: each bumps a distinct
	// counter pair that parity below must reconcile.
	for i := 0; i < 3; i++ {
		w := postJSON(t, s, "/v1/score", `{"rows":[[0.1,0.2,0.3],[1,0,1]]}`)
		if w.Code != http.StatusOK {
			t.Fatalf("score: status %d: %s", w.Code, w.Body.String())
		}
		if id := w.Header().Get(obs.RequestIDHeader); id == "" {
			t.Fatal("score response carries no request ID header")
		}
	}
	if w := postJSON(t, s, "/v1/score", `{"rows":[[1]]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("short row: status %d, want 400", w.Code)
	}
	if _, err := s.Reload(""); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var stats StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decoding /v1/stats: %v", err)
	}
	metrics, raw := scrape(t, s)

	parity := []struct {
		metric string
		want   int64
	}{
		{"malevade_scoring_requests_total", stats.Requests},
		{"malevade_scoring_rejected_total", stats.Rejected},
		{"malevade_reloads_total", stats.Reloads},
		{"malevade_serve_batches_total", stats.Batches},
		{"malevade_serve_rows_total", stats.Rows},
		{"malevade_campaigns_submitted_total", stats.Campaigns},
		{"malevade_harden_submitted_total", stats.HardenJobs},
		{"malevade_store_records_total", stats.ResultsRecords},
		{"malevade_store_bytes", stats.ResultsBytes},
		{"malevade_mine_submitted_total", stats.MineJobs},
		{"malevade_model_generation", stats.ModelVersion},
	}
	for _, p := range parity {
		got, ok := metrics[p.metric]
		if !ok {
			t.Errorf("scrape is missing %s", p.metric)
			continue
		}
		if int64(got) != p.want {
			t.Errorf("%s = %v, /v1/stats says %d", p.metric, got, p.want)
		}
	}
	if stats.Requests != 3 || stats.Rejected != 1 || stats.Reloads != 1 {
		t.Errorf("stats = %+v, want requests 3, rejected 1, reloads 1", stats)
	}

	// The HTTP middleware's own families must be present and labeled by
	// normalized endpoint, and the whole exposition lint-clean.
	text := string(raw)
	if !strings.Contains(text, `malevade_http_requests_total{endpoint="/v1/score",code="2xx"}`) {
		t.Errorf("scrape lacks the per-endpoint request counter:\n%s", text)
	}
	if !strings.Contains(text, "malevade_serve_precision_rows_total") {
		t.Errorf("scrape lacks the per-precision row counter:\n%s", text)
	}
	if problems := obs.Lint(raw); len(problems) != 0 {
		t.Errorf("scrape lint: %v", problems)
	}
}

// TestMetricsScrapeHammer scrapes /metrics concurrently with scoring
// traffic and hot reloads under the race detector, asserting every
// scrape stays lint-clean and the cumulative counters never move
// backwards — the retired-generation fold must be invisible to scrapes.
func TestMetricsScrapeHammer(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					postJSON(t, s, "/v1/score", `{"rows":[[0.5,0.5,0.5]]}`)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := s.Reload(""); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
		}
	}()

	var lastRows, lastReqs float64
	for i := 0; i < 50; i++ {
		metrics, raw := scrape(t, s)
		if problems := obs.Lint(raw); len(problems) != 0 {
			t.Fatalf("scrape %d lint: %v", i, problems)
		}
		rows := metrics["malevade_serve_rows_total"]
		reqs := metrics["malevade_scoring_requests_total"]
		if rows < lastRows {
			t.Fatalf("scrape %d: rows_total went backwards: %v -> %v", i, lastRows, rows)
		}
		if reqs < lastReqs {
			t.Fatalf("scrape %d: requests_total went backwards: %v -> %v", i, lastReqs, reqs)
		}
		lastRows, lastReqs = rows, reqs
	}
	close(stop)
	wg.Wait()
}

// TestRequestIDEchoedAndPropagated pins the edge half of the tracing
// contract: a valid inbound X-Malevade-Request-Id is echoed verbatim, a
// missing one is minted, and a malformed one is replaced rather than
// relayed.
func TestRequestIDEchoedAndPropagated(t *testing.T) {
	s, _ := newTestServer(t, Options{})

	req := httptest.NewRequest(http.MethodPost, "/v1/score",
		strings.NewReader(`{"rows":[[0,0,0]]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "trace-42")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if got := w.Header().Get(obs.RequestIDHeader); got != "trace-42" {
		t.Fatalf("valid inbound ID not propagated: got %q", got)
	}

	w = postJSON(t, s, "/v1/score", `{"rows":[[0,0,0]]}`)
	if got := w.Header().Get(obs.RequestIDHeader); !obs.ValidRequestID(got) {
		t.Fatalf("minted ID %q is not valid", got)
	}

	req = httptest.NewRequest(http.MethodPost, "/v1/score",
		strings.NewReader(`{"rows":[[0,0,0]]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "bad id\twith control")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	got := w.Header().Get(obs.RequestIDHeader)
	if got == "bad id\twith control" || !obs.ValidRequestID(got) {
		t.Fatalf("malformed inbound ID relayed: got %q", got)
	}
}
