package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"malevade/internal/wire"
)

// FuzzScoreRequest throws arbitrary bytes at the /v1/score and /v1/label
// request decoders. The contract under attack-shaped input: every malformed
// body — broken JSON, wrong shapes, ragged rows, NaN/Inf, oversized batches
// or bodies — is answered with a 4xx JSON error; the server never panics and
// never 5xxes, and a 200 always carries a well-formed response with one
// result per input row.
func FuzzScoreRequest(f *testing.F) {
	f.Add([]byte(`{"rows": [[0.1, 0.2, 0.3]]}`))
	f.Add([]byte(`{"rows": [[0.1, 0.2, 0.3], [1, 0, 1]]}`))
	f.Add([]byte(`{"rows": []}`))
	f.Add([]byte(`{"rows": [[1e999, 0, 0]]}`))
	f.Add([]byte(`{"rows": [[0.1]]}`))
	f.Add([]byte(`{"rows": [null]}`))
	f.Add([]byte(`{"rows": "not an array"}`))
	f.Add([]byte(`{"rowz": [[0.1, 0.2, 0.3]]}`))
	f.Add([]byte(`{"rows": [[0.1, 0.2, 0.3]]} trailing`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`{"rows": [[0,0,0],[0,0,0],[0,0,0],[0,0,0],[0,0,0],[0,0,0],[0,0,0],[0,0,0],[0,0,0]]}`))

	path, _ := saveTestNet(f, f.TempDir(), "fuzz.gob", []int{3, 8, 2}, 7)
	s, err := New(Options{ModelPath: path, MaxRows: 8, MaxBodyBytes: 1 << 12})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)

	f.Fuzz(func(t *testing.T, body []byte) {
		// Differential check on the fast-path decoder: whenever
		// fastParseRows accepts an input, the strict encoding/json path
		// must accept it too and produce the identical matrix. This is
		// the invariant that makes the fast path safe — it can only
		// narrow the accepted language, never widen or reinterpret it.
		if x, ok := fastParseRows(body, 3, 8); ok {
			var ref ScoreRequest
			dec := json.NewDecoder(strings.NewReader(string(body)))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&ref); err != nil || dec.More() {
				t.Fatalf("fast parser accepted input the strict decoder rejects: %q (err %v)", body, err)
			}
			if len(ref.Rows) != x.Rows {
				t.Fatalf("fast parser row count %d, strict %d for %q", x.Rows, len(ref.Rows), body)
			}
			for i, row := range ref.Rows {
				if len(row) != x.Cols {
					t.Fatalf("fast parser width %d, strict %d for %q", x.Cols, len(row), body)
				}
				for j, v := range row {
					if x.At(i, j) != v {
						t.Fatalf("fast parser value (%d,%d)=%v, strict %v for %q", i, j, x.At(i, j), v, body)
					}
				}
			}
		}
		for _, endpoint := range []string{"/v1/score", "/v1/label"} {
			req := httptest.NewRequest(http.MethodPost, endpoint, strings.NewReader(string(body)))
			req.Header.Set("Content-Type", "application/json")
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			switch {
			case w.Code == http.StatusOK:
				// A 200 must be a complete, decodable verdict.
				var resp ScoreResponse
				if endpoint == "/v1/label" {
					var lr LabelResponse
					if err := json.Unmarshal(w.Body.Bytes(), &lr); err != nil {
						t.Fatalf("%s: 200 with undecodable body: %v", endpoint, err)
					}
					if len(lr.Labels) == 0 || lr.ModelVersion == 0 {
						t.Fatalf("%s: 200 with empty verdict: %s", endpoint, w.Body)
					}
					continue
				}
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					t.Fatalf("%s: 200 with undecodable body: %v", endpoint, err)
				}
				if len(resp.Results) == 0 || resp.ModelVersion == 0 {
					t.Fatalf("%s: 200 with empty verdict: %s", endpoint, w.Body)
				}
			case w.Code >= 400 && w.Code < 500:
				// Rejections must still be JSON with an error message.
				var e errorResponse
				if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
					t.Fatalf("%s: %d without JSON error body: %s", endpoint, w.Code, w.Body)
				}
			default:
				t.Fatalf("%s: status %d on fuzzed input (want 200 or 4xx): %s", endpoint, w.Code, w.Body)
			}
		}
	})
}

// FuzzScoreFrame is the binary-framing twin of FuzzScoreRequest: arbitrary
// bytes posted as application/x-malevade-rows-f32. The decoder contract is
// the same — malformed frames (bad magic, truncated payloads, shape lies,
// hostile dimension products, non-finite values, unknown model names) earn
// a 4xx JSON error envelope; the server never panics, never 5xxes, and a
// 200 carries exactly one verdict per frame row. Additionally, whenever
// ParseFrame accepts a body, re-encoding the parsed frame must reproduce
// it byte-for-byte — the frame grammar is canonical, so parse∘encode is
// the identity on valid frames.
func FuzzScoreFrame(f *testing.F) {
	frame := func(model string, rows, cols int, values []float32) []byte {
		raw, err := wire.AppendFrame(nil, model, rows, cols, values)
		if err != nil {
			f.Fatal(err)
		}
		return raw
	}
	f.Add(frame("", 1, 3, []float32{0.1, 0.2, 0.3}))
	f.Add(frame("", 2, 3, []float32{1, 0, 1, 0, 1, 0}))
	f.Add(frame("other", 1, 3, []float32{0.5, 0.5, 0.5}))
	f.Add(frame("", 1, 2, []float32{1, 2}))                                 // wrong width
	f.Add(frame("", 9, 3, make([]float32, 27)))                             // over MaxRows
	f.Add(frame("", 1, 3, []float32{float32(math.NaN()), 0, 0}))            // non-finite
	f.Add(frame("", 1, 3, []float32{float32(math.Inf(1)), 0, 0}))           // non-finite
	f.Add(frame("", 1, 3, []float32{math.MaxFloat32, -math.MaxFloat32, 0})) // extreme but finite
	f.Add([]byte("MVF1"))                                                   // truncated header
	f.Add([]byte("XXXX\x01\x00"))                                           // bad magic
	f.Add([]byte(`{"rows": [[0,0,0]]}`))                                    // JSON under the wrong content type
	f.Add([]byte{})
	truncated := frame("", 2, 3, make([]float32, 6))
	f.Add(truncated[:len(truncated)-3])
	f.Add(append(frame("", 1, 3, make([]float32, 3)), 0xde, 0xad))

	path, _ := saveTestNet(f, f.TempDir(), "fuzzframe.gob", []int{3, 8, 2}, 7)
	s, err := New(Options{ModelPath: path, MaxRows: 8, MaxBodyBytes: 1 << 12})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)

	f.Fuzz(func(t *testing.T, body []byte) {
		if fr, err := wire.ParseFrame(body); err == nil {
			// Canonical-grammar check: the accepted body re-encodes to
			// itself exactly, and FrameLen agrees with reality.
			re, err := wire.AppendFrame(nil, fr.Model, fr.Rows, fr.Cols, fr.Values())
			if err != nil {
				t.Fatalf("parsed frame refuses to re-encode: %v", err)
			}
			if !bytes.Equal(re, body) {
				t.Fatalf("parse/encode not identity:\n in  %x\n out %x", body, re)
			}
			if want := wire.FrameLen(len(fr.Model), fr.Rows, fr.Cols); want != len(body) {
				t.Fatalf("FrameLen says %d, body is %d", want, len(body))
			}
		}
		for _, endpoint := range []string{"/v1/score", "/v1/label"} {
			req := httptest.NewRequest(http.MethodPost, endpoint, bytes.NewReader(body))
			req.Header.Set("Content-Type", wire.ContentTypeRowsF32)
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			switch {
			case w.Code == http.StatusOK:
				fr, err := wire.ParseFrame(body)
				if err != nil {
					t.Fatalf("%s: 200 for a body ParseFrame rejects: %v", endpoint, err)
				}
				if endpoint == "/v1/label" {
					var lr LabelResponse
					if err := json.Unmarshal(w.Body.Bytes(), &lr); err != nil {
						t.Fatalf("%s: 200 with undecodable body: %v", endpoint, err)
					}
					if len(lr.Labels) != fr.Rows || lr.ModelVersion == 0 {
						t.Fatalf("%s: %d labels for %d rows: %s", endpoint, len(lr.Labels), fr.Rows, w.Body)
					}
					continue
				}
				var resp ScoreResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					t.Fatalf("%s: 200 with undecodable body: %v", endpoint, err)
				}
				if len(resp.Results) != fr.Rows || resp.ModelVersion == 0 {
					t.Fatalf("%s: %d results for %d rows: %s", endpoint, len(resp.Results), fr.Rows, w.Body)
				}
			case w.Code >= 400 && w.Code < 500:
				var e errorResponse
				if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
					t.Fatalf("%s: %d without JSON error body: %s", endpoint, w.Code, w.Body)
				}
			default:
				t.Fatalf("%s: status %d on fuzzed frame (want 200 or 4xx): %s", endpoint, w.Code, w.Body)
			}
		}
	})
}
