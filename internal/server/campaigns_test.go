package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"malevade/internal/attack"
	"malevade/internal/campaign"
	"malevade/internal/rng"
)

// submitCampaign posts a spec and decodes the accepted snapshot.
func submitCampaign(t *testing.T, s *Server, spec campaign.Spec) campaign.Snapshot {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, s, "/v1/campaigns", string(body))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", w.Code, w.Body.String())
	}
	var snap campaign.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// getCampaign fetches one campaign snapshot over the API.
func getCampaign(t *testing.T, s *Server, id string, offset int) campaign.Snapshot {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/campaigns/%s?offset=%d", id, offset), nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("get %s: status %d: %s", id, w.Code, w.Body.String())
	}
	var snap campaign.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// awaitCampaign polls the API until the campaign is terminal.
func awaitCampaign(t *testing.T, s *Server, id string) campaign.Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		snap := getCampaign(t, s, id, 0)
		if snap.Status.Terminal() {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("campaign %s never finished", id)
	return campaign.Snapshot{}
}

func testCampaignRows(n, width int, seed uint64) [][]float64 {
	r := rng.New(seed)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, width)
		for j := range rows[i] {
			rows[i][j] = r.Float64()
		}
	}
	return rows
}

// TestCampaignAPILifecycle drives the full wire surface: submit, list, poll
// with offsets, stats accounting, cancel, and every documented error code.
func TestCampaignAPILifecycle(t *testing.T) {
	s, net := newTestServer(t, Options{})
	inDim := net.InDim()

	spec := campaign.Spec{
		Name:   "api-lifecycle",
		Attack: attack.Config{Kind: attack.KindJSMA, Theta: 0.2, Gamma: 0.3},
		Rows:   testCampaignRows(10, inDim, 5),
	}
	snap := submitCampaign(t, s, spec)
	if snap.ID == "" || snap.Status.Terminal() {
		t.Fatalf("submitted snapshot: %+v", snap)
	}
	if len(snap.Spec.Rows) != 0 {
		t.Errorf("snapshot echoes %d raw rows; rows must be elided", len(snap.Spec.Rows))
	}

	final := awaitCampaign(t, s, snap.ID)
	if final.Status != campaign.StatusDone {
		t.Fatalf("status %s (%s), want done", final.Status, final.Error)
	}
	if final.DoneSamples != 10 || final.TotalSamples != 10 {
		t.Fatalf("samples %d/%d, want 10/10", final.DoneSamples, final.TotalSamples)
	}
	if len(final.Generations) != 1 || final.Generations[0] != 1 {
		t.Errorf("generations %v, want [1] with no reloads", final.Generations)
	}
	for i, r := range final.Results {
		if r.Index != i || r.Generation != 1 {
			t.Errorf("result %d: %+v", i, r)
		}
	}

	// Windowed poll.
	tail := getCampaign(t, s, snap.ID, 8)
	if tail.ResultsOffset != 8 || len(tail.Results) != 2 {
		t.Errorf("offset poll: %d results at %d, want 2 at 8", len(tail.Results), tail.ResultsOffset)
	}

	// List contains the campaign, without per-sample results.
	req := httptest.NewRequest(http.MethodGet, "/v1/campaigns", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("list: status %d", w.Code)
	}
	var list CampaignList
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != snap.ID || len(list.Campaigns[0].Results) != 0 {
		t.Errorf("list: %+v", list)
	}

	// Stats count the submission.
	req = httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var stats StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Campaigns != 1 {
		t.Errorf("stats campaigns %d, want 1", stats.Campaigns)
	}

	// Error semantics.
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"malformed JSON", http.MethodPost, "/v1/campaigns", "{", http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/campaigns", `{"bogus": 1}`, http.StatusBadRequest},
		{"unknown attack kind", http.MethodPost, "/v1/campaigns",
			`{"attack": {"kind": "ddos"}}`, http.StatusUnprocessableEntity},
		{"unknown profile", http.MethodPost, "/v1/campaigns",
			`{"attack": {"kind": "jsma"}, "profile": "galactic"}`, http.StatusUnprocessableEntity},
		{"unknown id", http.MethodGet, "/v1/campaigns/c999999", "", http.StatusNotFound},
		{"bad offset", http.MethodGet, "/v1/campaigns/" + snap.ID + "?offset=-3", "", http.StatusBadRequest},
		{"cancel unknown id", http.MethodDelete, "/v1/campaigns/c999999", "", http.StatusNotFound},
		{"method not allowed", http.MethodPut, "/v1/campaigns/" + snap.ID, "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		var req *http.Request
		if tc.body != "" {
			req = httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			req.Header.Set("Content-Type", "application/json")
		} else {
			req = httptest.NewRequest(tc.method, tc.path, nil)
		}
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.wantStatus, w.Body.String())
		}
	}

	// Cancel of a finished campaign acknowledges without changing state.
	req = httptest.NewRequest(http.MethodDelete, "/v1/campaigns/"+snap.ID, nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("cancel finished: status %d", w.Code)
	}
	var cancelled campaign.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &cancelled); err != nil {
		t.Fatal(err)
	}
	if cancelled.Status != campaign.StatusDone {
		t.Errorf("cancel of finished campaign flipped status to %s", cancelled.Status)
	}
}

// TestCampaignWhiteBoxDefault: with no craft_model_path the campaign
// crafts on the daemon's own served model — the white-box setting — and the
// attack should evade the target it was crafted against for at least some
// samples at a generous budget.
func TestCampaignWhiteBoxDefault(t *testing.T) {
	s, net := newTestServer(t, Options{})
	spec := campaign.Spec{
		Attack: attack.Config{Kind: attack.KindJSMA, Theta: 0.5, Gamma: 0.5},
		Rows:   testCampaignRows(12, net.InDim(), 11),
	}
	final := awaitCampaign(t, s, submitCampaign(t, s, spec).ID)
	if final.Status != campaign.StatusDone {
		t.Fatalf("status %s (%s)", final.Status, final.Error)
	}
	for i, r := range final.Results {
		// White-box: the crafting model IS the target (same generation),
		// so the craft verdict and the target verdict must agree exactly.
		if r.CraftEvaded != r.Evaded {
			t.Errorf("sample %d: craft evaded %v but target evaded %v — white-box default must craft on the served model",
				i, r.CraftEvaded, r.Evaded)
		}
	}
}

// TestCampaignReloadHammer is the hot-reload acceptance test for the
// campaign layer: campaigns run to completion while the model is hot-swapped
// as fast as the server allows, with zero dropped (failed) campaigns and
// zero mixed-generation batches — every batch's samples carry one
// generation, proven from the wire-visible per-sample results.
func TestCampaignReloadHammer(t *testing.T) {
	dir := t.TempDir()
	// Wide enough that JSMA's per-batch crafting takes real time, so the
	// reload hammer demonstrably interleaves with running campaigns.
	dims := []int{64, 128, 2}
	pathA, _ := saveTestNet(t, dir, "a.gob", dims, 1)
	pathB, _ := saveTestNet(t, dir, "b.gob", dims, 2)

	s, err := New(Options{ModelPath: pathA, Campaigns: campaign.Options{Workers: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const rows = 60
	const batchSize = 2
	const nCampaigns = 4
	ids := make([]string, 0, nCampaigns)
	for c := 0; c < nCampaigns; c++ {
		snap := submitCampaign(t, s, campaign.Spec{
			Attack:    attack.Config{Kind: attack.KindJSMA, Theta: 0.3, Gamma: 0.4},
			Rows:      testCampaignRows(rows, dims[0], uint64(c+1)),
			BatchSize: batchSize,
		})
		ids = append(ids, snap.ID)
	}

	// Hammer reloads until every campaign finishes.
	var stop atomic.Bool
	reloadDone := make(chan int)
	go func() {
		paths := [2]string{pathB, pathA}
		n := 0
		for !stop.Load() {
			if _, err := s.Reload(paths[n%2]); err != nil {
				t.Errorf("reload %d: %v", n, err)
				break
			}
			n++
			time.Sleep(200 * time.Microsecond)
		}
		reloadDone <- n
	}()

	distinct := make(map[int64]bool)
	for _, id := range ids {
		final := awaitCampaign(t, s, id)
		if final.Status != campaign.StatusDone {
			t.Fatalf("campaign %s: status %s (%s) — campaigns must survive hot-reloads",
				id, final.Status, final.Error)
		}
		if final.DoneSamples != rows {
			t.Fatalf("campaign %s judged %d/%d samples — dropped batches", id, final.DoneSamples, rows)
		}
		// Zero mixed-generation batches: within each batch, every sample
		// must have been judged by the same model generation.
		for b := 0; b*batchSize < len(final.Results); b++ {
			lo := b * batchSize
			hi := min(lo+batchSize, len(final.Results))
			gen := final.Results[lo].Generation
			if gen <= 0 {
				t.Fatalf("campaign %s batch %d: generation %d", id, b, gen)
			}
			for i := lo; i < hi; i++ {
				if final.Results[i].Generation != gen {
					t.Fatalf("campaign %s batch %d mixes generations %d and %d",
						id, b, gen, final.Results[i].Generation)
				}
			}
			distinct[gen] = true
		}
	}
	stop.Store(true)
	reloads := <-reloadDone
	if reloads == 0 {
		t.Fatal("hammer performed no reloads")
	}
	// The point of the hammer: reloads really landed mid-campaign (batches
	// were judged by several generations) and not one batch mixed them.
	if len(distinct) < 2 {
		t.Errorf("all batches saw one generation across %d reloads — hammer never interleaved", reloads)
	}
	t.Logf("%d campaigns × %d samples across %d hot-reloads; %d distinct generations judged batches",
		nCampaigns, rows, reloads, len(distinct))
}
