// Package server exposes the concurrent batched scoring engine as a JSON
// HTTP daemon — the paper's deployed-detector setting (conf_dsn_HuangVFIKW19
// §III), where adversaries probe a production malware classifier as a
// black-box oracle over the network.
//
// Endpoints:
//
//	POST /v1/score   batch feature vectors → per-row malware probability
//	                 and predicted class
//	POST /v1/label   oracle-style hard labels (the black-box attack surface)
//	POST /v1/reload  hot-reload the model from disk
//	GET  /healthz    liveness + current model version
//	GET  /v1/stats   batch/row/request counters
//
// plus the asynchronous attack-campaign API (see campaigns.go):
//
//	POST   /v1/campaigns       submit an evasion campaign
//	GET    /v1/campaigns       list campaigns
//	GET    /v1/campaigns/{id}  status + incremental per-sample results
//	DELETE /v1/campaigns/{id}  cancel
//
// docs/http-api.md is the full wire reference.
//
// The model behind the endpoints hot-reloads atomically: a reload (SIGHUP in
// the CLI, or POST /v1/reload) loads the new network from disk, swaps it in
// behind an atomic.Pointer, then drains and closes the old scoring engine.
// Every request resolves the model exactly once, so a response is always
// computed wholly by one model version — no in-flight request ever sees a
// torn model.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"malevade/internal/campaign"
	"malevade/internal/client"
	"malevade/internal/dataset"
	"malevade/internal/defense"
	"malevade/internal/detector"
	"malevade/internal/nn"
	"malevade/internal/serve"
	"malevade/internal/tensor"
	"malevade/internal/wire"
)

// Options configures a Server. ModelPath is required; everything else has
// sensible defaults.
type Options struct {
	// ModelPath is the nn.SaveFile model the server loads at startup and
	// on every reload that names no explicit path.
	ModelPath string
	// Temperature is the softmax temperature of the probability head
	// (0 means 1).
	Temperature float64
	// Scorer tunes the underlying batched engine (workers, max merged
	// batch, queue depth).
	Scorer serve.Options
	// MaxRows caps the rows accepted in one /v1/score or /v1/label
	// request (default 4096). Larger batches are rejected with 400.
	MaxRows int
	// MaxBodyBytes caps the request body size (default 32 MiB). Larger
	// bodies are rejected with 413.
	MaxBodyBytes int64
	// Campaigns tunes the attack-campaign orchestrator behind
	// /v1/campaigns (workers, queue depth, sample caps). LocalTarget,
	// CraftModel and RemoteTarget are filled by the server when unset:
	// campaigns then target the live generation-pinned model, craft on a
	// private copy of the served model file, and reach remote targets
	// through the client SDK.
	Campaigns campaign.Options
	// Defenses hardens every loaded model generation with a servable
	// defense chain (defense.Chain.Wrap): scoring, labels and campaign
	// verdicts then all travel the defended path, so the daemon serves a
	// hardened detector through the same API as a bare one. Every spec
	// must be buildable from the model alone (Chain.ValidateServable);
	// data-consuming defenses are built offline with ApplyDefenses and
	// served as an ordinary hardened model file.
	Defenses defense.Chain
}

func (o Options) withDefaults() Options {
	if o.Temperature <= 0 {
		o.Temperature = 1
	}
	if o.MaxRows <= 0 {
		o.MaxRows = 4096
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	return o
}

// model is one immutable loaded model generation: the scoring engine plus
// its identity. refs counts in-flight requests pinned to this generation so
// a reload can drain it before closing the engine; once retired, the last
// release signals drained instead of making the reloader poll.
type model struct {
	scorer   *serve.Scorer
	version  int64
	path     string
	loadedAt time.Time
	// det is the defended verdict path when Options.Defenses is set (nil
	// for a bare daemon, which scores straight off the engine's logits).
	det detector.Detector

	refs      atomic.Int64
	retired   atomic.Bool
	drained   chan struct{}
	drainOnce sync.Once
}

func (m *model) signalDrained() {
	m.drainOnce.Do(func() { close(m.drained) })
}

// Server is the HTTP scoring daemon. Create with New, serve with any
// http.Server (it implements http.Handler), and Close when done.
type Server struct {
	opts Options
	mux  *http.ServeMux

	// cur is the live model generation. Handlers pin it with acquire/
	// release; Reload swaps it and drains the old generation. nil after
	// Close.
	cur atomic.Pointer[model]

	// reloadMu serializes Reload/Close so generations retire one at a
	// time and version numbers are strictly increasing.
	reloadMu sync.Mutex
	version  atomic.Int64

	// campaigns is the asynchronous attack-campaign orchestrator behind
	// /v1/campaigns; its local target pins one model generation per
	// campaign batch.
	campaigns *campaign.Engine

	requests atomic.Int64 // scoring requests served (score + label)
	rejected atomic.Int64 // scoring requests rejected with 4xx
	reloads  atomic.Int64 // successful hot-reloads

	// retiredBatches/retiredRows accumulate the engine counters of closed
	// generations so /v1/stats is cumulative across reloads.
	retiredBatches atomic.Int64
	retiredRows    atomic.Int64
}

// New loads the model at opts.ModelPath and returns a ready-to-serve daemon.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.ModelPath == "" {
		return nil, fmt.Errorf("server: Options.ModelPath is required")
	}
	if len(opts.Defenses) > 0 {
		if err := opts.Defenses.ValidateServable(); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{opts: opts}
	m, err := s.load(opts.ModelPath)
	if err != nil {
		return nil, err
	}
	s.cur.Store(m)
	campaignOpts := opts.Campaigns
	if campaignOpts.LocalTarget == nil {
		campaignOpts.LocalTarget = serverTarget{s}
	}
	if campaignOpts.CraftModel == nil {
		campaignOpts.CraftModel = s.craftModel
	}
	if campaignOpts.RemoteTarget == nil {
		campaignOpts.RemoteTarget = func(baseURL string) (campaign.Target, error) {
			return client.NewRemoteTarget(baseURL), nil
		}
	}
	s.campaigns = campaign.NewEngine(campaignOpts)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/score", s.handleScore)
	s.mux.HandleFunc("/v1/label", s.handleLabel)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleCampaignSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleCampaignList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignGet)
	s.mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCampaignCancel)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// load builds the next model generation from a saved network file.
func (s *Server) load(path string) (*model, error) {
	net, err := nn.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: load model: %w", err)
	}
	// The API contract is the paper's two-class head (clean/malware); a
	// model with any other logits width must fail here, at load time,
	// rather than panic inside every scoring handler.
	if net.OutDim() != 2 {
		return nil, fmt.Errorf("server: model %s has %d output classes, want 2 (clean/malware)",
			path, net.OutDim())
	}
	scorerOpts := s.opts.Scorer
	if len(s.opts.Defenses) > 0 && scorerOpts.Workers == 0 {
		// A defended generation's verdicts travel the defense chain, not
		// the coalescing engine; keep the (still load-bearing for InDim
		// and drain semantics, but otherwise idle) engine at one worker
		// instead of a full GOMAXPROCS pool.
		scorerOpts.Workers = 1
	}
	m := &model{
		scorer:   serve.New(net, s.opts.Temperature, scorerOpts),
		version:  s.version.Add(1),
		path:     path,
		loadedAt: time.Now(),
		drained:  make(chan struct{}),
	}
	if len(s.opts.Defenses) > 0 {
		// The defended path wraps a plain DNN over the same loaded
		// network (its inference path is concurrency-safe and pools
		// per-call workspaces). Engine batch/row counters therefore do
		// not advance on defended daemons — docs/http-api.md notes this.
		det, err := s.opts.Defenses.Wrap(&detector.DNN{Net: net, Temperature: s.opts.Temperature})
		if err != nil {
			m.scorer.Close()
			return nil, fmt.Errorf("server: build defense chain: %w", err)
		}
		m.det = det
	}
	return m, nil
}

// acquire pins the current model generation for the duration of one
// request. The retry loop closes the race with a concurrent swap: a ref
// taken on an already-retired generation is dropped and the load retried,
// so a successful acquire guarantees the generation stayed current at the
// moment its refcount became visible — the drain in Reload can therefore
// never close an engine a request is still using. Returns nil after Close.
func (s *Server) acquire() *model {
	for {
		m := s.cur.Load()
		if m == nil {
			return nil
		}
		m.refs.Add(1)
		if s.cur.Load() == m {
			return m
		}
		// Lost the race with a swap: drop the ref through release so that
		// if this was the retired generation's last reference, the drain
		// is signalled — a bare decrement here would wedge retire forever.
		s.release(m)
	}
}

func (s *Server) release(m *model) {
	if m.refs.Add(-1) == 0 && m.retired.Load() {
		m.signalDrained()
	}
}

// retire drains a swapped-out generation and folds its engine counters into
// the cumulative stats. The drain blocks on a channel the last release
// closes — no polling. Any ref taken after the retired count was observed
// at zero belongs to an acquire that will fail its recheck without touching
// the engine, so closing it then is safe.
func (s *Server) retire(m *model) {
	m.retired.Store(true)
	if m.refs.Load() == 0 {
		m.signalDrained()
	}
	<-m.drained
	b, r := m.scorer.Stats()
	s.retiredBatches.Add(b)
	s.retiredRows.Add(r)
	m.scorer.Close()
}

// Reload hot-swaps the model. An empty path reloads from the configured
// ModelPath; a non-empty path becomes the new configured path on success.
// In-flight requests finish on the generation they started on.
func (s *Server) Reload(path string) (version int64, err error) {
	m, err := s.reload(path)
	if err != nil {
		return 0, err
	}
	return m.version, nil
}

// reload is Reload returning the swapped-in generation, so callers can
// report its version and resolved path as a consistent pair.
func (s *Server) reload(path string) (*model, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.cur.Load()
	if old == nil {
		return nil, fmt.Errorf("server: reload after Close")
	}
	if path == "" {
		path = old.path
	}
	m, err := s.load(path)
	if err != nil {
		return nil, err
	}
	s.cur.Store(m)
	s.reloads.Add(1)
	s.retire(old)
	return m, nil
}

// Close cancels running campaigns, drains in-flight requests and releases
// the scoring engine. Subsequent requests are answered 503. Idempotent.
func (s *Server) Close() {
	// Campaigns first: their batches hold generation refs through
	// serverTarget, so cancelling and draining them lets the final retire
	// below complete without waiting on long-running jobs.
	s.campaigns.Close()
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.cur.Swap(nil)
	if old != nil {
		s.retire(old)
	}
}

// ModelVersion reports the current model generation (1 at startup,
// incremented by each successful reload).
func (s *Server) ModelVersion() int64 {
	if m := s.cur.Load(); m != nil {
		return m.version
	}
	return 0
}

// Wire schemas.

// ScoreRequest is the body of /v1/score and /v1/label: a batch of feature
// vectors, each exactly InDim wide.
type ScoreRequest struct {
	Rows [][]float64 `json:"rows"`
}

// ScoreResult is one row's verdict.
type ScoreResult struct {
	// Prob is P(malware|x) at the server's temperature.
	Prob float64 `json:"prob"`
	// Class is the argmax class (0 clean, 1 malware).
	Class int `json:"class"`
}

// ScoreResponse answers /v1/score. ModelVersion identifies the exact model
// generation that computed every row of Results.
type ScoreResponse struct {
	ModelVersion int64         `json:"model_version"`
	Results      []ScoreResult `json:"results"`
}

// LabelResponse answers /v1/label with oracle-style hard labels.
type LabelResponse struct {
	ModelVersion int64 `json:"model_version"`
	Labels       []int `json:"labels"`
}

// ReloadRequest optionally names a new model path for /v1/reload; an empty
// body or empty path reloads the configured path.
type ReloadRequest struct {
	Path string `json:"path"`
}

// ReloadResponse reports the swapped-in generation.
type ReloadResponse struct {
	ModelVersion int64  `json:"model_version"`
	ModelPath    string `json:"model_path"`
}

// HealthResponse answers /healthz.
type HealthResponse struct {
	Status       string `json:"status"`
	ModelVersion int64  `json:"model_version"`
	ModelPath    string `json:"model_path"`
	LoadedAt     string `json:"loaded_at"`
	InDim        int    `json:"in_dim"`
	// Defenses names the live defense chain, in application order (empty
	// for a bare daemon).
	Defenses []string `json:"defenses,omitempty"`
}

// StatsResponse answers /v1/stats with counters cumulative across reloads.
type StatsResponse struct {
	ModelVersion int64 `json:"model_version"`
	// Requests/Rejected count scoring calls (score + label) served and
	// refused with a 4xx.
	Requests int64 `json:"requests"`
	Rejected int64 `json:"rejected"`
	Reloads  int64 `json:"reloads"`
	// Batches/Rows are the engine's merged-batch counters; Rows/Batches
	// is the mean coalescing factor.
	Batches int64 `json:"batches"`
	Rows    int64 `json:"rows"`
	// Campaigns counts campaign submissions accepted by /v1/campaigns.
	Campaigns int64 `json:"campaigns"`
}

// errorResponse is the JSON error envelope, carrying the human message
// and the machine-readable taxonomy code (wire.Envelope is the canonical
// definition; the alias keeps the server's wire schemas in one place).
type errorResponse = wire.Envelope

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders the error envelope for a refused call, deriving the
// taxonomy code from the status so every documented status carries
// exactly one code (see internal/wire and docs/ERRORS.md).
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{
		Error: fmt.Sprintf(format, args...),
		Code:  wire.CodeForStatus(status),
	})
}

func (s *Server) reject(w http.ResponseWriter, status int, format string, args ...any) {
	s.rejected.Add(1)
	writeError(w, status, format, args...)
}

// decodeRows parses and validates a scoring request body into a matrix.
// Every failure mode — malformed JSON, oversized body or batch, ragged or
// wrong-width rows, non-finite values — is a client error, reported with
// the returned status; the decoder never panics on hostile input.
//
// Canonical bodies take the reflection-free fast parser (fastrows.go);
// anything it declines falls back to the strict encoding/json path below,
// which owns every error message — so hostile inputs see exactly the
// behavior they always did.
func (s *Server) decodeRows(w http.ResponseWriter, r *http.Request, inDim int) (*tensor.Matrix, int, error) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	raw, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.opts.MaxBodyBytes)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("read body: %v", err)
	}
	if x, ok := fastParseRows(raw, inDim, s.opts.MaxRows); ok {
		return x, 0, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var req ScoreRequest
	if err := dec.Decode(&req); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("invalid JSON: %v", err)
	}
	if dec.More() {
		return nil, http.StatusBadRequest, fmt.Errorf("trailing data after JSON body")
	}
	if len(req.Rows) == 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("rows must be a non-empty array")
	}
	if len(req.Rows) > s.opts.MaxRows {
		return nil, http.StatusBadRequest,
			fmt.Errorf("batch of %d rows exceeds limit %d", len(req.Rows), s.opts.MaxRows)
	}
	x := tensor.New(len(req.Rows), inDim)
	for i, row := range req.Rows {
		if len(row) != inDim {
			return nil, http.StatusBadRequest,
				fmt.Errorf("row %d has %d features, want %d", i, len(row), inDim)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, http.StatusBadRequest,
					fmt.Errorf("row %d feature %d is not finite", i, j)
			}
		}
		copy(x.Row(i), row)
	}
	return x, 0, nil
}

// score runs the shared request path of /v1/score and /v1/label: pin one
// model generation, decode against its input width, and hand the pinned
// generation plus the decoded batch to render. Every verdict of one
// request is computed wholly by that generation — off the engine's raw
// logits for a bare daemon, through the defense chain for a defended one.
func (s *Server) score(w http.ResponseWriter, r *http.Request,
	render func(m *model, x *tensor.Matrix)) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.reject(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	m := s.acquire()
	if m == nil {
		writeError(w, http.StatusServiceUnavailable, "server is shut down")
		return
	}
	defer s.release(m)
	x, status, err := s.decodeRows(w, r, m.scorer.InDim())
	if err != nil {
		s.reject(w, status, "%v", err)
		return
	}
	s.requests.Add(1)
	render(m, x)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	s.score(w, r, func(m *model, x *tensor.Matrix) {
		resp := ScoreResponse{
			ModelVersion: m.version,
			Results:      make([]ScoreResult, x.Rows),
		}
		if m.det != nil {
			// Defended daemon: the chain's verdicts (a squeezing flag
			// saturates Prob to 1) replace the raw softmax head. Chains
			// exposing the combined Verdicts pass (feature squeezing
			// does) answer probability and class from one inference.
			ps, classes := detectorVerdicts(m.det, x)
			for i := range resp.Results {
				resp.Results[i] = ScoreResult{Prob: ps[i], Class: classes[i]}
			}
		} else {
			logits := m.scorer.Logits(x)
			probs := make([]float64, logits.Cols)
			for i := range resp.Results {
				nn.SoftmaxRow(logits.Row(i), probs, s.opts.Temperature)
				resp.Results[i] = ScoreResult{
					Prob:  probs[dataset.LabelMalware],
					Class: logits.RowArgmax(i),
				}
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

// detectorVerdicts fetches probabilities and classes for one batch,
// through the detector's combined single-pass path when it has one.
func detectorVerdicts(det detector.Detector, x *tensor.Matrix) ([]float64, []int) {
	if v, ok := det.(interface {
		Verdicts(x *tensor.Matrix) ([]float64, []int)
	}); ok {
		return v.Verdicts(x)
	}
	return det.MalwareProb(x), det.Predict(x)
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request) {
	s.score(w, r, func(m *model, x *tensor.Matrix) {
		resp := LabelResponse{ModelVersion: m.version}
		if m.det != nil {
			resp.Labels = m.det.Predict(x)
		} else {
			logits := m.scorer.Logits(x)
			resp.Labels = make([]int, logits.Rows)
			for i := range resp.Labels {
				resp.Labels[i] = logits.RowArgmax(i)
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	// An entirely empty body means "reload the configured path"; anything
	// present must be valid JSON.
	var req ReloadRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	m, err := s.reload(req.Path)
	if err != nil {
		// A failure on a client-supplied path is the client's error (the
		// current model keeps serving either way, so it's 422
		// invalid_spec); only a failure of the server's own configured
		// path is a server fault worth a 500 internal.
		status := http.StatusInternalServerError
		if req.Path != "" {
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{ModelVersion: m.version, ModelPath: m.path})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.cur.Load()
	if m == nil {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "shutdown"})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:       "ok",
		ModelVersion: m.version,
		ModelPath:    m.path,
		LoadedAt:     m.loadedAt.UTC().Format(time.RFC3339),
		InDim:        m.scorer.InDim(),
		Defenses:     s.opts.Defenses.Names(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Requests:  s.requests.Load(),
		Rejected:  s.rejected.Load(),
		Reloads:   s.reloads.Load(),
		Batches:   s.retiredBatches.Load(),
		Rows:      s.retiredRows.Load(),
		Campaigns: s.campaigns.Submitted(),
	}
	if m := s.acquire(); m != nil {
		b, rows := m.scorer.Stats()
		resp.ModelVersion = m.version
		resp.Batches += b
		resp.Rows += rows
		s.release(m)
	}
	writeJSON(w, http.StatusOK, resp)
}
