// Package server exposes the concurrent batched scoring engine as a JSON
// HTTP daemon — the paper's deployed-detector setting (conf_dsn_HuangVFIKW19
// §III), where adversaries probe a production malware classifier as a
// black-box oracle over the network.
//
// Endpoints:
//
//	POST /v1/score   batch feature vectors → per-row malware probability
//	                 and predicted class
//	POST /v1/label   oracle-style hard labels (the black-box attack surface)
//	POST /v1/reload  hot-reload the model from disk
//	GET  /healthz    liveness + current model version
//	GET  /v1/stats   batch/row/request counters
//
// plus the asynchronous attack-campaign API (see campaigns.go):
//
//	POST   /v1/campaigns       submit an evasion campaign
//	GET    /v1/campaigns       list campaigns
//	GET    /v1/campaigns/{id}  status + incremental per-sample results
//	DELETE /v1/campaigns/{id}  cancel
//
// and, when a registry is configured, the closed-loop hardening API
// (see harden.go):
//
//	POST   /v1/harden       submit a hardening job
//	GET    /v1/harden       list jobs
//	GET    /v1/harden/{id}  status + per-round metrics
//	DELETE /v1/harden/{id}  cancel
//
// and the durable results store + historical attack mining API
// (see results.go), persisted under RegistryDir/.results:
//
//	GET    /v1/results              stored campaigns + store counters
//	GET    /v1/results/{id}         per-sample results, paginated/filtered
//	GET    /v1/results/traffic      recorded live traffic (serve -record)
//	POST   /v1/results/{id}/replay  re-score a stored perturbation
//	POST   /v1/mine                 sweep recorded traffic for evasions
//	GET    /v1/mine                 list sweeps
//	GET    /v1/mine/{id}            ranked findings
//	DELETE /v1/mine/{id}            cancel a queued sweep
//
// docs/http-api.md is the full wire reference.
//
// The model behind the endpoints hot-reloads atomically: a reload (SIGHUP in
// the CLI, or POST /v1/reload) loads the new network from disk, swaps it in
// behind an atomic.Pointer, then drains and closes the old scoring engine.
// Every request resolves the model exactly once, so a response is always
// computed wholly by one model version — no in-flight request ever sees a
// torn model.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"mime"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"malevade/internal/campaign"
	"malevade/internal/client"
	"malevade/internal/dataset"
	"malevade/internal/defense"
	"malevade/internal/detector"
	"malevade/internal/harden"
	"malevade/internal/nn"
	"malevade/internal/obs"
	"malevade/internal/registry"
	"malevade/internal/serve"
	"malevade/internal/store"
	"malevade/internal/tensor"
	"malevade/internal/wire"
)

// Options configures a Server. ModelPath is required; everything else has
// sensible defaults.
type Options struct {
	// ModelPath is the nn.SaveFile model the server loads at startup and
	// on every reload that names no explicit path.
	ModelPath string
	// Temperature is the softmax temperature of the probability head
	// (0 means 1).
	Temperature float64
	// Scorer tunes the underlying batched engine (workers, max merged
	// batch, queue depth).
	Scorer serve.Options
	// MaxRows caps the rows accepted in one /v1/score or /v1/label
	// request (default 4096). Larger batches are rejected with 400.
	MaxRows int
	// MaxBodyBytes caps the request body size (default 32 MiB). Larger
	// bodies are rejected with 413.
	MaxBodyBytes int64
	// BinaryPrecision selects the inference path for binary-framed
	// scoring requests (Content-Type application/x-malevade-rows-f32):
	// serve.PrecisionFloat32 (the default — vector kernels, drift bounded
	// by internal/nn's parity tests), serve.PrecisionInt8 (explicit
	// opt-in), or serve.PrecisionFloat64 to route binary frames through
	// the reference engine. JSON requests always score in float64.
	// Defended models and models whose weights fail plan compilation fall
	// back to float64 regardless.
	BinaryPrecision string
	// Campaigns tunes the attack-campaign orchestrator behind
	// /v1/campaigns (workers, queue depth, sample caps). LocalTarget,
	// CraftModel and RemoteTarget are filled by the server when unset:
	// campaigns then target the live generation-pinned model, craft on a
	// private copy of the served model file, and reach remote targets
	// through the client SDK.
	Campaigns campaign.Options
	// Defenses hardens every loaded model generation with a servable
	// defense chain (defense.Chain.Wrap): scoring, labels and campaign
	// verdicts then all travel the defended path, so the daemon serves a
	// hardened detector through the same API as a bare one. Every spec
	// must be buildable from the model alone (Chain.ValidateServable);
	// data-consuming defenses are built offline with ApplyDefenses and
	// served as an ordinary hardened model file. Applies to the default
	// model only; registry models carry their own per-version chains.
	Defenses defense.Chain
	// RegistryDir, when non-empty, opens the disk-backed model registry
	// rooted there and exposes it as /v1/models: named, versioned,
	// durable detectors with atomic live promotion, addressable from
	// scoring/label requests (the "model" field) and campaign specs
	// ("target_model"). Registry generations and default-slot reloads
	// draw from one monotonic counter.
	RegistryDir string
	// RegistryMaxModels / RegistryMaxVersions cap the registry (defaults
	// 64 models, 32 versions per model); past them registrations are
	// refused with 507 registry_full.
	RegistryMaxModels   int
	RegistryMaxVersions int
	// Harden tunes the closed-loop hardening controller behind /v1/harden
	// (workers, queue depth, round cap). Dir, Campaigns and Models are
	// filled by the server: job state persists under RegistryDir/.harden,
	// rounds run through the daemon's campaign engine, and hardened
	// versions promote through its registry. The controller only exists
	// when RegistryDir is set — hardening retrains and promotes named,
	// durable models.
	Harden harden.Options
	// Results tunes the durable campaign-results store behind /v1/results
	// (traffic flush threshold). Dir is filled by the server: results
	// persist under RegistryDir/.results, campaign per-sample results
	// stream into it as they are judged, and a restarted daemon serves
	// them back bit-identically. The store only exists when RegistryDir is
	// set — a registry-less daemon runs fully in-memory.
	Results store.Options
	// Miner tunes the historical-attack miner behind /v1/mine (workers,
	// queue depth, suspicion band). The miner sweeps the store's recorded
	// traffic, so it too only exists when RegistryDir is set.
	Miner store.MinerOptions
	// RecordTraffic, when positive, samples one in every RecordTraffic
	// scoring/label rows into the results store's traffic log (1 records
	// everything) — the daemon-side half of in-the-wild evasion mining.
	// Off by default: recording live traffic is an explicit operator
	// opt-in (`serve -record`).
	RecordTraffic int
	// Obs, when set, is the metrics registry the daemon records into and
	// serves at GET /metrics; nil makes the server create a private one.
	// Passing a shared registry embeds the daemon's metrics in a larger
	// process's exposition. /v1/stats is a backward-compatible view over
	// the same sources (docs/OBSERVABILITY.md maps every field).
	Obs *obs.Registry
	// Logger receives structured lifecycle events (boot, reload,
	// promotion, campaign/harden/mine transitions, store recovery) and
	// per-request access logs carrying X-Malevade-Request-Id. Nil
	// discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Temperature <= 0 {
		o.Temperature = 1
	}
	if o.MaxRows <= 0 {
		o.MaxRows = 4096
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.BinaryPrecision == "" {
		o.BinaryPrecision = serve.PrecisionFloat32
	}
	return o
}

// model is the server's name for one immutable loaded generation of the
// default slot — the registry's refcounted Instance (the drain machinery
// the reload path introduced now lives in internal/registry, shared with
// every named model's slot).
type model = registry.Instance

// Server is the HTTP scoring daemon. Create with New, serve with any
// http.Server (it implements http.Handler), and Close when done.
type Server struct {
	opts Options
	mux  *http.ServeMux

	// slot holds the live default-model generation. Handlers pin it with
	// acquire/release; Reload swaps it and drains the old generation.
	// Empty after Close.
	slot registry.Slot

	// reloadMu serializes Reload/Close so generations retire one at a
	// time and version numbers are strictly increasing.
	reloadMu sync.Mutex
	version  atomic.Int64

	// registry is the named-model store behind /v1/models (nil unless
	// Options.RegistryDir is set). It shares s.version as its generation
	// counter, so default-slot reloads and registry promotions draw from
	// one monotonic sequence.
	registry *registry.Registry

	// campaigns is the asynchronous attack-campaign orchestrator behind
	// /v1/campaigns; its local target pins one model generation per
	// campaign batch.
	campaigns *campaign.Engine

	// harden is the closed-loop hardening controller behind /v1/harden
	// (nil unless a registry is configured). Its durable job state lives
	// under RegistryDir/.harden, so a restarted daemon resumes in-flight
	// hardening jobs.
	harden *harden.Engine

	// store is the durable campaign-results store behind /v1/results (nil
	// unless a registry is configured). It lives under
	// RegistryDir/.results; the campaign engine streams every job's
	// per-sample results into it, and — behind Options.RecordTraffic —
	// sampled live scoring rows land in its traffic log.
	store *store.Store

	// miner runs queued historical-attack sweeps over the store's
	// recorded traffic behind /v1/mine (nil without a store).
	miner *store.Miner

	// recordSeq drives the 1-in-RecordTraffic row sampler.
	recordSeq atomic.Int64

	started time.Time // process start, for uptime_seconds

	// obs is the metrics registry behind GET /metrics; /v1/stats renders
	// the same sources, so the two views cannot drift. handler is the mux
	// wrapped in the shared HTTP middleware (request counts, latency
	// histograms, request IDs, access logs).
	obs     *obs.Registry
	log     *slog.Logger
	handler http.Handler

	requests      *obs.Counter    // scoring requests served (score + label)
	rejected      *obs.Counter    // scoring requests rejected with 4xx
	reloads       *obs.Counter    // successful hot-reloads
	precisionRows *obs.CounterVec // rows scored, by kernel precision

	// retiredBatches/retiredRows accumulate the engine counters of closed
	// generations so /v1/stats is cumulative across reloads.
	retiredBatches atomic.Int64
	retiredRows    atomic.Int64
}

// New loads the model at opts.ModelPath and returns a ready-to-serve daemon.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.ModelPath == "" {
		return nil, fmt.Errorf("server: Options.ModelPath is required")
	}
	if !serve.ValidPrecision(opts.BinaryPrecision) {
		return nil, fmt.Errorf("server: unknown binary precision %q", opts.BinaryPrecision)
	}
	if len(opts.Defenses) > 0 {
		if err := opts.Defenses.ValidateServable(); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{opts: opts, started: time.Now()}
	s.obs = opts.Obs
	if s.obs == nil {
		s.obs = obs.NewRegistry()
	}
	s.log = obs.Or(opts.Logger)
	// Core scoring counters live in the obs registry; /v1/stats reads
	// them back through Value(), so the JSON view and /metrics cannot
	// disagree.
	s.requests = s.obs.Counter("malevade_scoring_requests_total",
		"Scoring requests served (score + label), summed across reloads.")
	s.rejected = s.obs.Counter("malevade_scoring_rejected_total",
		"Scoring requests rejected with a 4xx before reaching an engine.")
	s.reloads = s.obs.Counter("malevade_reloads_total",
		"Successful hot model reloads on the default slot.")
	s.precisionRows = s.obs.CounterVec("malevade_serve_precision_rows_total",
		"Rows scored, by the kernel precision that actually ran them.",
		"precision")
	// Thread the registry into every engine the daemon builds: the slot
	// scorer and all registry-loaded scorers share one batch-rows
	// histogram, and the store/campaign/harden layers register their own
	// instruments against the same exposition.
	opts.Scorer.Obs = s.obs
	s.opts.Scorer.Obs = s.obs
	// The registry opens before the default slot loads: Open raises the
	// shared generation counter past every generation persisted in the
	// manifests, so the default model's generation — and everything after
	// it — stays unique even against a registry dir populated by an
	// earlier process.
	if opts.RegistryDir != "" {
		reg, err := registry.Open(registry.Options{
			Dir:         opts.RegistryDir,
			Temperature: opts.Temperature,
			Scorer:      opts.Scorer,
			MaxModels:   opts.RegistryMaxModels,
			MaxVersions: opts.RegistryMaxVersions,
			Gen:         &s.version,
			Logger:      opts.Logger,
		})
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.registry = reg
		// The results store nests beside the registry (Open skips
		// manifest-less directories, so .results is invisible to it) and
		// recovers prior campaigns before the engine below seeds its id
		// counter from them.
		resultsOpts := opts.Results
		if resultsOpts.Dir == "" {
			resultsOpts.Dir = filepath.Join(opts.RegistryDir, ".results")
		}
		if resultsOpts.Obs == nil {
			resultsOpts.Obs = s.obs
		}
		if resultsOpts.Logger == nil {
			resultsOpts.Logger = opts.Logger
		}
		st, err := store.Open(resultsOpts)
		if err != nil {
			s.registry.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.store = st
	}
	m, err := s.load(opts.ModelPath)
	if err != nil {
		if s.store != nil {
			s.store.Close()
		}
		if s.registry != nil {
			s.registry.Close()
		}
		return nil, err
	}
	s.slot.Store(m)
	campaignOpts := opts.Campaigns
	if s.store != nil && campaignOpts.Sink == nil {
		// Stream every campaign's per-sample results into the store, and
		// seed the id counter past recovered campaigns so c%06d ids stay
		// unique across restarts.
		campaignOpts.Sink = s.store
		if campaignOpts.BaseSeq == 0 {
			campaignOpts.BaseSeq = s.store.MaxCampaignSeq()
		}
	}
	if campaignOpts.LocalTarget == nil {
		campaignOpts.LocalTarget = serverTarget{s}
	}
	if campaignOpts.CraftModel == nil {
		campaignOpts.CraftModel = s.craftModel
	}
	if campaignOpts.RemoteTarget == nil {
		campaignOpts.RemoteTarget = func(baseURL string) (campaign.Target, error) {
			return client.NewRemoteTarget(baseURL), nil
		}
	}
	if s.registry != nil {
		if campaignOpts.NamedTarget == nil {
			campaignOpts.NamedTarget = func(name string) (campaign.Target, error) {
				// Validate eagerly (Submit calls this synchronously), then
				// judge batches against whatever version is live at batch
				// time — a promotion mid-campaign splits between batches,
				// never inside one.
				if _, err := s.registry.Get(name); err != nil {
					return nil, err
				}
				return namedTarget{s: s, name: name}, nil
			}
		}
		if campaignOpts.NamedCraftModel == nil {
			campaignOpts.NamedCraftModel = s.registry.LoadLive
		}
	}
	if campaignOpts.Obs == nil {
		campaignOpts.Obs = s.obs
	}
	if campaignOpts.Logger == nil {
		campaignOpts.Logger = opts.Logger
	}
	s.campaigns = campaign.NewEngine(campaignOpts)
	if s.registry != nil {
		hardenOpts := opts.Harden
		if hardenOpts.Dir == "" {
			// The registry's Open skips directories without a
			// manifest.json, so the job-state dir nests safely inside the
			// registry dir and shares its backup/restore story.
			hardenOpts.Dir = filepath.Join(opts.RegistryDir, ".harden")
		}
		hardenOpts.Campaigns = s.campaigns
		hardenOpts.Models = s.registry
		if hardenOpts.Obs == nil {
			hardenOpts.Obs = s.obs
		}
		if hardenOpts.Logger == nil {
			hardenOpts.Logger = opts.Logger
		}
		h, err := harden.NewEngine(hardenOpts)
		if err != nil {
			s.campaigns.Close()
			s.store.Close()
			s.registry.Close()
			old := s.slot.Swap(nil)
			if old != nil {
				s.retire(old)
			}
			return nil, fmt.Errorf("server: %w", err)
		}
		s.harden = h
	}
	if s.store != nil {
		minerOpts := opts.Miner
		if minerOpts.Logger == nil {
			minerOpts.Logger = opts.Logger
		}
		s.miner = store.NewMiner(s.store, minerOpts)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/score", s.handleScore)
	s.mux.HandleFunc("/v1/label", s.handleLabel)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleCampaignSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleCampaignList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignGet)
	s.mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCampaignCancel)
	s.mux.HandleFunc("POST /v1/harden", s.handleHardenSubmit)
	s.mux.HandleFunc("GET /v1/harden", s.handleHardenList)
	s.mux.HandleFunc("GET /v1/harden/{id}", s.handleHardenGet)
	s.mux.HandleFunc("DELETE /v1/harden/{id}", s.handleHardenCancel)
	s.mux.HandleFunc("GET /v1/results", s.handleResultsList)
	s.mux.HandleFunc("GET /v1/results/{id}", s.handleResultsGet)
	s.mux.HandleFunc("POST /v1/results/{id}/replay", s.handleResultsReplay)
	s.mux.HandleFunc("POST /v1/mine", s.handleMineSubmit)
	s.mux.HandleFunc("GET /v1/mine", s.handleMineList)
	s.mux.HandleFunc("GET /v1/mine/{id}", s.handleMineGet)
	s.mux.HandleFunc("DELETE /v1/mine/{id}", s.handleMineCancel)
	s.mux.HandleFunc("GET /v1/models", s.handleModelList)
	s.mux.HandleFunc("POST /v1/models", s.handleModelRegister)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleModelGet)
	s.mux.HandleFunc("POST /v1/models/{name}", s.handleModelAction)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.handleModelDelete)
	s.mux.Handle("GET /metrics", s.obs.Handler())
	s.registerFuncMetrics()
	s.handler = obs.NewHTTP(s.obs, opts.Logger, nil).Wrap(s.mux)
	s.log.Info("daemon ready",
		"model_path", opts.ModelPath,
		"generation", s.ModelVersion(),
		"precision", opts.BinaryPrecision,
		"registry", opts.RegistryDir != "",
		"record_traffic", opts.RecordTraffic,
	)
	return s, nil
}

// registerFuncMetrics exposes values other layers already maintain —
// engine counters, registry state, store sizes, job-queue totals — as
// callback metrics so scrapes read the exact sources /v1/stats renders.
func (s *Server) registerFuncMetrics() {
	s.obs.GaugeFunc("malevade_uptime_seconds",
		"Seconds since the daemon process booted.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.obs.GaugeFunc("malevade_model_generation",
		"Monotonic generation of the model live on the default slot.",
		func() float64 { return float64(s.ModelVersion()) })
	s.obs.CounterFunc("malevade_serve_batches_total",
		"Forward passes executed, cumulative across hot reloads.",
		func() float64 { b, _ := s.engineTotals(); return float64(b) })
	s.obs.CounterFunc("malevade_serve_rows_total",
		"Rows scored by the engine, cumulative across hot reloads.",
		func() float64 { _, r := s.engineTotals(); return float64(r) })
	s.obs.GaugeFunc("malevade_serve_queue_depth",
		"Scoring requests buffered across every live engine's queue.",
		func() float64 { q, _ := s.engineLoad(); return float64(q) })
	s.obs.GaugeFunc("malevade_serve_inflight_requests",
		"Scoring requests submitted to engines and not yet answered.",
		func() float64 { _, f := s.engineLoad(); return float64(f) })
	s.obs.CounterFunc("malevade_campaigns_submitted_total",
		"Adversarial campaigns accepted over the daemon lifetime.",
		func() float64 { return float64(s.campaigns.Submitted()) })
	if s.registry != nil {
		s.obs.GaugeFunc("malevade_registry_models",
			"Named models currently resident in the registry.",
			func() float64 { return float64(len(s.registry.List())) })
		s.obs.CounterFunc("malevade_registry_promotions_total",
			"Version promotions (register-with-promote + explicit promote).",
			func() float64 { return float64(s.registry.Promotions()) })
		s.obs.CounterVecFunc("malevade_model_requests_total",
			"Scoring requests served per registry model.",
			"model",
			func() map[string]float64 {
				counts := s.registry.RequestCounts()
				out := make(map[string]float64, len(counts))
				for name, n := range counts {
					out[name] = float64(n)
				}
				return out
			})
	}
	if s.harden != nil {
		s.obs.CounterFunc("malevade_harden_submitted_total",
			"Hardening jobs accepted over the daemon lifetime.",
			func() float64 { return float64(s.harden.Submitted()) })
	}
	if s.store != nil {
		s.obs.CounterFunc("malevade_store_records_total",
			"Result records appended to the campaign store.",
			func() float64 { return float64(s.store.Records()) })
		s.obs.GaugeFunc("malevade_store_bytes",
			"Bytes held by the campaign result logs on disk.",
			func() float64 { return float64(s.store.Bytes()) })
		s.obs.GaugeFunc("malevade_store_traffic_bytes",
			"Bytes held by the sampled live-traffic log (traffic.mrl).",
			func() float64 { return float64(s.store.TrafficBytes()) })
		s.obs.GaugeFunc("malevade_store_traffic_records",
			"Sampled live-traffic records available for mining.",
			func() float64 { return float64(s.store.TrafficRecords()) })
	}
	if s.miner != nil {
		s.obs.CounterFunc("malevade_mine_submitted_total",
			"Traffic-mining jobs accepted over the daemon lifetime.",
			func() float64 { return float64(s.miner.Submitted()) })
	}
}

// engineTotals sums batch/row counters across retired generations and
// the live slot. The live engine is pinned before retired counters are
// read so a concurrent reload cannot fold the pinned engine's counters
// mid-sum — successive scrapes stay monotone.
func (s *Server) engineTotals() (batches, rows int64) {
	m := s.acquire()
	batches, rows = s.retiredBatches.Load(), s.retiredRows.Load()
	if m != nil {
		b, r := m.Scorer.Stats()
		batches += b
		rows += r
		s.release(m)
	}
	return batches, rows
}

// engineLoad sums queue depth and in-flight counts over the default
// slot and every live registry engine.
func (s *Server) engineLoad() (queue, inflight int64) {
	if m := s.slot.Load(); m != nil {
		queue += int64(m.Scorer.QueueDepth())
		inflight += m.Scorer.InFlight()
	}
	if s.registry != nil {
		q, f := s.registry.EngineLoad()
		queue += q
		inflight += f
	}
	return queue, inflight
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// load builds the next default-slot generation from a saved network file,
// through the registry's shared instance builder (engine + optional
// defense wrap + two-class-head validation at load time).
func (s *Server) load(path string) (*model, error) {
	gen := s.version.Add(1)
	m, err := registry.BuildInstance(registry.InstanceConfig{
		Path:        path,
		Version:     int(gen),
		Generation:  gen,
		Temperature: s.opts.Temperature,
		Scorer:      s.opts.Scorer,
		Defenses:    s.opts.Defenses,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return m, nil
}

// acquire pins the current default-model generation for the duration of
// one request (registry.Slot.Acquire: a successful acquire guarantees the
// generation stayed current at the moment its refcount became visible, so
// a reload's drain can never close an engine a request is still using).
// Returns nil after Close.
func (s *Server) acquire() *model { return s.slot.Acquire() }

func (s *Server) release(m *model) { m.Release() }

// retire drains a swapped-out generation and folds its engine counters
// into the cumulative stats.
func (s *Server) retire(m *model) {
	b, r := m.Retire()
	s.retiredBatches.Add(b)
	s.retiredRows.Add(r)
}

// Reload hot-swaps the model. An empty path reloads from the configured
// ModelPath; a non-empty path becomes the new configured path on success.
// In-flight requests finish on the generation they started on.
func (s *Server) Reload(path string) (version int64, err error) {
	m, err := s.reload(path)
	if err != nil {
		return 0, err
	}
	return m.Generation, nil
}

// reload is Reload returning the swapped-in generation, so callers can
// report its version and resolved path as a consistent pair.
func (s *Server) reload(path string) (*model, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.slot.Load()
	if old == nil {
		return nil, fmt.Errorf("server: reload after Close")
	}
	if path == "" {
		path = old.Path
	}
	m, err := s.load(path)
	if err != nil {
		return nil, err
	}
	s.slot.Store(m)
	s.reloads.Inc()
	s.log.Info("model reloaded",
		"path", m.Path, "generation", m.Generation)
	s.retire(old)
	return m, nil
}

// Registry exposes the daemon's model registry (nil unless RegistryDir
// was configured), for embedders that register or promote in-process.
func (s *Server) Registry() *registry.Registry { return s.registry }

// Close cancels running campaigns, drains in-flight requests and releases
// the scoring engines — the default slot's and every registry model's.
// Subsequent requests are answered 503. The registry's on-disk store is
// untouched, so a daemon restarted on the same -registry dir serves the
// previously live versions. Idempotent.
func (s *Server) Close() {
	// The hardening controller closes first: its jobs drive campaigns and
	// registry promotions, so stopping it (resumably — in-flight jobs keep
	// their durable state) lets the campaign and registry shutdowns below
	// proceed without live submitters. Then campaigns: their batches hold
	// generation refs through serverTarget/namedTarget, so cancelling and
	// draining them lets the retires below complete without waiting on
	// long-running jobs.
	if s.harden != nil {
		s.harden.Close()
	}
	s.campaigns.Close()
	// The miner and store close after campaigns: the drained engine has
	// delivered every terminal snapshot to its sink by now, so the store
	// seals each campaign log before closing.
	if s.miner != nil {
		s.miner.Close()
	}
	if s.store != nil {
		s.store.Close()
	}
	if s.registry != nil {
		s.registry.Close()
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.slot.Swap(nil)
	if old != nil {
		s.retire(old)
		s.log.Info("daemon shut down",
			"uptime_seconds", time.Since(s.started).Seconds())
	}
}

// ModelVersion reports the current default-model generation (1 at
// startup, advanced by each successful reload — and, when a registry is
// configured, sharing its monotonic sequence with promotions).
func (s *Server) ModelVersion() int64 {
	if m := s.slot.Load(); m != nil {
		return m.Generation
	}
	return 0
}

// Wire schemas.

// ScoreRequest is the body of /v1/score and /v1/label: a batch of feature
// vectors, each exactly the addressed model's input width. Model routes
// the request to a named registry model; empty keeps the daemon's
// original single-model behavior, so the wire protocol is backward
// compatible.
type ScoreRequest struct {
	Model string      `json:"model,omitempty"`
	Rows  [][]float64 `json:"rows"`
}

// ScoreResult is one row's verdict.
type ScoreResult struct {
	// Prob is P(malware|x) at the server's temperature.
	Prob float64 `json:"prob"`
	// Class is the argmax class (0 clean, 1 malware).
	Class int `json:"class"`
}

// ScoreResponse answers /v1/score. ModelVersion identifies the exact model
// generation that computed every row of Results.
type ScoreResponse struct {
	ModelVersion int64         `json:"model_version"`
	Results      []ScoreResult `json:"results"`
}

// LabelResponse answers /v1/label with oracle-style hard labels.
type LabelResponse struct {
	ModelVersion int64 `json:"model_version"`
	Labels       []int `json:"labels"`
}

// ReloadRequest optionally names a new model path for /v1/reload; an empty
// body or empty path reloads the configured path.
type ReloadRequest struct {
	Path string `json:"path"`
}

// ReloadResponse reports the swapped-in generation.
type ReloadResponse struct {
	ModelVersion int64  `json:"model_version"`
	ModelPath    string `json:"model_path"`
}

// HealthResponse answers /healthz.
type HealthResponse struct {
	Status       string `json:"status"`
	ModelVersion int64  `json:"model_version"`
	ModelPath    string `json:"model_path"`
	LoadedAt     string `json:"loaded_at"`
	InDim        int    `json:"in_dim"`
	// Defenses names the live defense chain, in application order (empty
	// for a bare daemon).
	Defenses []string `json:"defenses,omitempty"`
	// Models counts the registry's named models (absent without a
	// registry).
	Models int `json:"models,omitempty"`
	// ModelNames lists the registry's model names, sorted (absent without
	// a registry) — what a fleet gateway's health probe needs for
	// per-model routing without a second round-trip.
	ModelNames []string `json:"model_names,omitempty"`
}

// StatsResponse answers /v1/stats with counters cumulative across reloads.
type StatsResponse struct {
	ModelVersion int64 `json:"model_version"`
	// UptimeSeconds is how long the daemon process has been serving.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests/Rejected count scoring calls (score + label) served and
	// refused with a 4xx.
	Requests int64 `json:"requests"`
	Rejected int64 `json:"rejected"`
	Reloads  int64 `json:"reloads"`
	// Batches/Rows are the default-model engine's merged-batch counters;
	// Rows/Batches is the mean coalescing factor.
	Batches int64 `json:"batches"`
	Rows    int64 `json:"rows"`
	// Campaigns counts campaign submissions accepted by /v1/campaigns.
	Campaigns int64 `json:"campaigns"`
	// HardenJobs counts hardening jobs accepted by /v1/harden (absent
	// without a registry).
	HardenJobs int64 `json:"harden_jobs,omitempty"`
	// ResultsRecords/ResultsBytes count the durable results store's
	// committed records and bytes across every log (absent without a
	// registry, and therefore without a store).
	ResultsRecords int64 `json:"results_records,omitempty"`
	ResultsBytes   int64 `json:"results_bytes,omitempty"`
	// MineJobs counts mining sweeps accepted by /v1/mine (absent without
	// a registry).
	MineJobs int64 `json:"mine_jobs,omitempty"`
	// ModelRequests counts model-addressed scoring/label requests served
	// per registry model (absent without a registry).
	ModelRequests map[string]int64 `json:"model_requests,omitempty"`
}

// errorResponse is the JSON error envelope, carrying the human message
// and the machine-readable taxonomy code (wire.Envelope is the canonical
// definition; the alias keeps the server's wire schemas in one place).
type errorResponse = wire.Envelope

// writeJSON, writeError and writeErrorCode are the wire package's shared
// renderers (marshal-first: an unencodable value becomes a 500 envelope,
// never an empty committed 200), aliased to keep this package's handler
// code terse.
func writeJSON(w http.ResponseWriter, status int, v any) { wire.WriteJSON(w, status, v) }

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	wire.WriteError(w, status, format, args...)
}

func writeErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	wire.WriteErrorCode(w, status, code, format, args...)
}

func (s *Server) reject(w http.ResponseWriter, status int, format string, args ...any) {
	s.rejected.Inc()
	writeError(w, status, format, args...)
}

// readBody reads a scoring request body under the configured byte cap.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, int, error) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	raw, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.opts.MaxBodyBytes)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("read body: %v", err)
	}
	return raw, 0, nil
}

// decodeScoreRequest is the strict scoring-body decoder. Every failure
// mode — malformed JSON, unknown fields, trailing data — is a client
// error; row validation happens in rowsMatrix once the addressed model
// (and therefore the expected width) is known.
func decodeScoreRequest(raw []byte) (ScoreRequest, int, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var req ScoreRequest
	if err := dec.Decode(&req); err != nil {
		return ScoreRequest{}, http.StatusBadRequest, fmt.Errorf("invalid JSON: %v", err)
	}
	if dec.More() {
		return ScoreRequest{}, http.StatusBadRequest, fmt.Errorf("trailing data after JSON body")
	}
	return req, 0, nil
}

// rowsMatrix validates a decoded batch against the addressed model's
// input width and packs it into a matrix; the validator never panics on
// hostile input.
func (s *Server) rowsMatrix(rows [][]float64, inDim int) (*tensor.Matrix, int, error) {
	if len(rows) == 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("rows must be a non-empty array")
	}
	if len(rows) > s.opts.MaxRows {
		return nil, http.StatusBadRequest,
			fmt.Errorf("batch of %d rows exceeds limit %d", len(rows), s.opts.MaxRows)
	}
	x := tensor.New(len(rows), inDim)
	for i, row := range rows {
		if len(row) != inDim {
			return nil, http.StatusBadRequest,
				fmt.Errorf("row %d has %d features, want %d", i, len(row), inDim)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, http.StatusBadRequest,
					fmt.Errorf("row %d feature %d is not finite", i, j)
			}
		}
		copy(x.Row(i), row)
	}
	return x, 0, nil
}

// registryAcquire pins a named registry model's live instance, mapping
// registry errors onto the wire taxonomy: unknown names are 404
// unknown_model, a model with no live version is 409 version_conflict,
// and a daemon without a registry refuses model addressing outright.
func (s *Server) registryAcquire(name string) (*model, int, string, error) {
	if s.registry == nil {
		return nil, http.StatusUnprocessableEntity, wire.CodeInvalidSpec,
			fmt.Errorf("daemon has no model registry (start with -registry)")
	}
	inst, err := s.registry.Acquire(name)
	switch {
	case err == nil:
		return inst, 0, "", nil
	case errors.Is(err, registry.ErrUnknownModel):
		return nil, http.StatusNotFound, wire.CodeUnknownModel, err
	case errors.Is(err, registry.ErrVersionConflict):
		return nil, http.StatusConflict, wire.CodeVersionConflict, err
	default:
		return nil, http.StatusServiceUnavailable, wire.CodeUnavailable, err
	}
}

// score runs the shared request path of /v1/score and /v1/label: pin one
// model generation — the default slot, or the registry model the body's
// "model" field names — decode against its input width, and hand the
// pinned generation plus the decoded batch to render. Every verdict of
// one request is computed wholly by that generation — off the engine's
// raw logits for a bare model, through the defense chain for a defended
// one.
//
// Canonical single-model bodies take the reflection-free fast parser
// (fastrows.go); anything it declines — including every model-addressed
// body — falls back to the strict encoding/json path, which owns every
// error message, so hostile inputs see exactly the behavior they always
// did.
//
// The request's Content-Type picks the representation: absent or JSON
// takes the paths above; the binary rows frame (wire.ContentTypeRowsF32)
// takes scoreFrame and the reduced-precision engine; anything else is a
// 415 unsupported_media_type. render32 renders one reduced-precision
// batch and is only ever called with a precision whose plan compiled.
func (s *Server) score(w http.ResponseWriter, r *http.Request,
	render func(m *model, x *tensor.Matrix),
	render32 func(m *model, x *tensor.Matrix32, precision string)) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.reject(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	binary := false
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil {
			s.reject(w, http.StatusUnsupportedMediaType, "unparseable Content-Type %q", ct)
			return
		}
		switch mt {
		case wire.ContentTypeJSON:
		case wire.ContentTypeRowsF32:
			binary = true
		default:
			s.reject(w, http.StatusUnsupportedMediaType,
				"unsupported Content-Type %q (use %s or %s)", mt, wire.ContentTypeJSON, wire.ContentTypeRowsF32)
			return
		}
	}
	m := s.acquire()
	if m == nil {
		writeError(w, http.StatusServiceUnavailable, "server is shut down")
		return
	}
	defer s.release(m)
	raw, status, err := s.readBody(w, r)
	if err != nil {
		s.reject(w, status, "%v", err)
		return
	}
	if binary {
		s.scoreFrame(w, m, raw, render, render32)
		return
	}
	if x, ok := fastParseRows(raw, m.Scorer.InDim(), s.opts.MaxRows); ok {
		s.requests.Inc()
		s.precisionRows.With(serve.PrecisionFloat64).Add(int64(x.Rows))
		m.CountRequest()
		render(m, x)
		return
	}
	req, status, err := decodeScoreRequest(raw)
	if err != nil {
		s.reject(w, status, "%v", err)
		return
	}
	target := m
	if req.Model != "" {
		named, status, code, err := s.registryAcquire(req.Model)
		if err != nil {
			s.rejected.Inc()
			writeErrorCode(w, status, code, "%v", err)
			return
		}
		defer named.Release()
		target = named
	}
	x, status, err := s.rowsMatrix(req.Rows, target.Scorer.InDim())
	if err != nil {
		s.reject(w, status, "%v", err)
		return
	}
	s.requests.Inc()
	s.precisionRows.With(serve.PrecisionFloat64).Add(int64(x.Rows))
	target.CountRequest()
	render(target, x)
}

// scoreFrame is the binary half of the scoring path: parse the rows
// frame, resolve its model field exactly like the JSON "model" field,
// validate shape and finiteness under the same limits, then score through
// the reduced-precision plan. A defended model, a float64
// BinaryPrecision, or a model whose weights refuse plan compilation falls
// back to the float64 reference path — callers opted into a wire format,
// not into wrong answers.
func (s *Server) scoreFrame(w http.ResponseWriter, m *model, raw []byte,
	render func(m *model, x *tensor.Matrix),
	render32 func(m *model, x *tensor.Matrix32, precision string)) {
	f, err := wire.ParseFrame(raw)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "%v", err)
		return
	}
	target := m
	if f.Model != "" {
		named, status, code, err := s.registryAcquire(f.Model)
		if err != nil {
			s.rejected.Inc()
			writeErrorCode(w, status, code, "%v", err)
			return
		}
		defer named.Release()
		target = named
	}
	if f.Rows > s.opts.MaxRows {
		s.reject(w, http.StatusBadRequest, "batch of %d rows exceeds limit %d", f.Rows, s.opts.MaxRows)
		return
	}
	if inDim := target.Scorer.InDim(); f.Cols != inDim {
		s.reject(w, http.StatusBadRequest, "frame rows have %d features, want %d", f.Cols, inDim)
		return
	}
	x32 := tensor.FromSlice32(f.Rows, f.Cols, f.Values())
	for i, v := range x32.Data {
		f64 := float64(v)
		if math.IsNaN(f64) || math.IsInf(f64, 0) {
			s.reject(w, http.StatusBadRequest, "row %d feature %d is not finite", i/f.Cols, i%f.Cols)
			return
		}
	}
	s.requests.Inc()
	target.CountRequest()
	precision := s.opts.BinaryPrecision
	if target.Det != nil || precision == serve.PrecisionFloat64 ||
		target.Scorer.EnsurePlan(precision) != nil {
		s.precisionRows.With(serve.PrecisionFloat64).Add(int64(f.Rows))
		render(target, x32.Float64())
		return
	}
	s.precisionRows.With(precision).Add(int64(f.Rows))
	render32(target, x32, precision)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	s.score(w, r, func(m *model, x *tensor.Matrix) {
		resp := ScoreResponse{
			ModelVersion: m.Generation,
			Results:      make([]ScoreResult, x.Rows),
		}
		if m.Det != nil {
			// Defended model: the chain's verdicts (a squeezing flag
			// saturates Prob to 1) replace the raw softmax head. Chains
			// exposing the combined Verdicts pass (feature squeezing
			// does) answer probability and class from one inference.
			ps, classes := detectorVerdicts(m.Det, x)
			for i := range resp.Results {
				resp.Results[i] = ScoreResult{Prob: ps[i], Class: classes[i]}
			}
		} else {
			logits := m.Scorer.Logits(x)
			probs := make([]float64, logits.Cols)
			for i := range resp.Results {
				nn.SoftmaxRow(logits.Row(i), probs, s.opts.Temperature)
				resp.Results[i] = ScoreResult{
					Prob:  probs[dataset.LabelMalware],
					Class: logits.RowArgmax(i),
				}
			}
		}
		s.recordRows("score", m, x.Row, x.Rows, func(i int) (float64, bool, int) {
			return resp.Results[i].Prob, true, resp.Results[i].Class
		})
		writeJSON(w, http.StatusOK, resp)
	}, func(m *model, x *tensor.Matrix32, precision string) {
		ps, classes, err := m.Scorer.Verdicts32(x, precision)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp := ScoreResponse{
			ModelVersion: m.Generation,
			Results:      make([]ScoreResult, x.Rows),
		}
		for i := range resp.Results {
			resp.Results[i] = ScoreResult{Prob: ps[i], Class: classes[i]}
		}
		s.recordRows("score", m, row32(x), x.Rows, func(i int) (float64, bool, int) {
			return ps[i], true, classes[i]
		})
		writeJSON(w, http.StatusOK, resp)
	})
}

// recordRows samples rows of one served scoring batch into the results
// store's traffic log (Options.RecordTraffic is the 1-in-N rate; 0
// disables). Recording failures are swallowed: a full disk must never fail
// a scoring request.
func (s *Server) recordRows(endpoint string, m *model, rowAt func(int) []float64, n int, verdict func(int) (prob float64, hasProb bool, class int)) {
	if s.store == nil || s.opts.RecordTraffic <= 0 {
		return
	}
	every := int64(s.opts.RecordTraffic)
	now := time.Now()
	for i := 0; i < n; i++ {
		if s.recordSeq.Add(1)%every != 0 {
			continue
		}
		prob, hasProb, class := verdict(i)
		_ = s.store.RecordTraffic(store.TrafficRow{
			Time:       now,
			Endpoint:   endpoint,
			Model:      m.Name,
			Generation: m.Generation,
			Prob:       prob,
			HasProb:    hasProb,
			Class:      class,
			Row:        append([]float64(nil), rowAt(i)...),
		})
	}
}

// row32 adapts a float32 batch's rows to the float64 row accessor
// recordRows wants — conversion happens only for the sampled rows.
func row32(x *tensor.Matrix32) func(int) []float64 {
	return func(i int) []float64 {
		out := make([]float64, x.Cols)
		for j := 0; j < x.Cols; j++ {
			out[j] = float64(x.Data[i*x.Cols+j])
		}
		return out
	}
}

// detectorVerdicts fetches probabilities and classes for one batch,
// through the detector's combined single-pass path when it has one.
func detectorVerdicts(det detector.Detector, x *tensor.Matrix) ([]float64, []int) {
	if v, ok := det.(interface {
		Verdicts(x *tensor.Matrix) ([]float64, []int)
	}); ok {
		return v.Verdicts(x)
	}
	return det.MalwareProb(x), det.Predict(x)
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request) {
	s.score(w, r, func(m *model, x *tensor.Matrix) {
		resp := LabelResponse{ModelVersion: m.Generation}
		if m.Det != nil {
			resp.Labels = m.Det.Predict(x)
		} else {
			logits := m.Scorer.Logits(x)
			resp.Labels = make([]int, logits.Rows)
			for i := range resp.Labels {
				resp.Labels[i] = logits.RowArgmax(i)
			}
		}
		s.recordRows("label", m, x.Row, x.Rows, func(i int) (float64, bool, int) {
			// Label rows carry only the hard class: the oracle endpoint
			// never computed a probability.
			return 0, false, resp.Labels[i]
		})
		writeJSON(w, http.StatusOK, resp)
	}, func(m *model, x *tensor.Matrix32, precision string) {
		_, classes, err := m.Scorer.Verdicts32(x, precision)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.recordRows("label", m, row32(x), x.Rows, func(i int) (float64, bool, int) {
			return 0, false, classes[i]
		})
		writeJSON(w, http.StatusOK, LabelResponse{ModelVersion: m.Generation, Labels: classes})
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	// An entirely empty body means "reload the configured path"; anything
	// present must be valid JSON.
	var req ReloadRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	m, err := s.reload(req.Path)
	if err != nil {
		// A failure on a client-supplied path is the client's error (the
		// current model keeps serving either way, so it's 422
		// invalid_spec); only a failure of the server's own configured
		// path is a server fault worth a 500 internal.
		status := http.StatusInternalServerError
		if req.Path != "" {
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{ModelVersion: m.Generation, ModelPath: m.Path})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.slot.Load()
	if m == nil {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "shutdown"})
		return
	}
	resp := HealthResponse{
		Status:       "ok",
		ModelVersion: m.Generation,
		ModelPath:    m.Path,
		LoadedAt:     m.LoadedAt.UTC().Format(time.RFC3339),
		InDim:        m.Scorer.InDim(),
		Defenses:     s.opts.Defenses.Names(),
	}
	if s.registry != nil {
		resp.ModelNames = s.registry.Names()
		resp.Models = len(resp.ModelNames)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	batches, rows := s.engineTotals()
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests.Value(),
		Rejected:      s.rejected.Value(),
		Reloads:       s.reloads.Value(),
		Batches:       batches,
		Rows:          rows,
		Campaigns:     s.campaigns.Submitted(),
	}
	if s.harden != nil {
		resp.HardenJobs = s.harden.Submitted()
	}
	if s.store != nil {
		resp.ResultsRecords = s.store.Records()
		resp.ResultsBytes = s.store.Bytes()
	}
	if s.miner != nil {
		resp.MineJobs = s.miner.Submitted()
	}
	if m := s.slot.Load(); m != nil {
		resp.ModelVersion = m.Generation
	}
	if s.registry != nil {
		resp.ModelRequests = s.registry.RequestCounts()
	}
	writeJSON(w, http.StatusOK, resp)
}
