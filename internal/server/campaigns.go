package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"malevade/internal/campaign"
	"malevade/internal/nn"
	"malevade/internal/registry"
	"malevade/internal/tensor"
	"malevade/internal/wire"
)

// The campaigns API exposes the asynchronous attack-campaign orchestrator
// (internal/campaign) over the daemon:
//
//	POST   /v1/campaigns       submit a campaign spec        → 202 + snapshot
//	GET    /v1/campaigns       list campaign summaries       → 200
//	GET    /v1/campaigns/{id}  status + incremental results  → 200 (?offset=N)
//	DELETE /v1/campaigns/{id}  cancel via context            → 202 + snapshot
//
// Campaigns run on the engine's worker pool and survive hot-reloads: every
// batch is judged through serverTarget, which pins one model generation for
// the batch's single evaluation exactly like a scoring request pins its
// generation — a reload mid-campaign splits between batches, never inside
// one.

// serverTarget adapts the server's generation-pinned scoring path into a
// campaign.Target: one LabelBatch call acquires the live generation, judges
// every row through its engine, and reports that generation's version.
type serverTarget struct{ s *Server }

var _ campaign.Target = serverTarget{}

// LabelBatch implements campaign.Target. A defended daemon judges
// campaign batches through its defense chain — the same verdict path
// /v1/label serves — so campaigns attack exactly what clients score
// against. The job's ctx flows into the engine's submit path, so a
// cancelled campaign abandons a batch already queued behind other work.
func (t serverTarget) LabelBatch(ctx context.Context, x *tensor.Matrix) ([]int, int64, error) {
	m := t.s.acquire()
	if m == nil {
		return nil, 0, errors.New("server: shut down")
	}
	defer t.s.release(m)
	return instanceLabels(ctx, m, x)
}

// namedTarget judges campaign batches against one registry model: each
// LabelBatch call pins whatever version is live at that moment, so a
// promotion mid-campaign splits between batches, never inside one —
// exactly the default slot's hot-reload contract, per named detector.
type namedTarget struct {
	s    *Server
	name string
}

var _ campaign.Target = namedTarget{}

// LabelBatch implements campaign.Target over the named model's live
// instance.
func (t namedTarget) LabelBatch(ctx context.Context, x *tensor.Matrix) ([]int, int64, error) {
	if t.s.registry == nil {
		return nil, 0, errors.New("server: no model registry")
	}
	m, err := t.s.registry.Acquire(t.name)
	if err != nil {
		return nil, 0, err
	}
	defer m.Release()
	return instanceLabels(ctx, m, x)
}

// instanceLabels judges one batch wholly on one pinned instance — through
// the defense chain when the instance carries one, off the engine's
// logits otherwise — and reports the instance's generation.
func instanceLabels(ctx context.Context, m *model, x *tensor.Matrix) ([]int, int64, error) {
	if x.Cols != m.Scorer.InDim() {
		return nil, 0, fmt.Errorf("server: campaign batch has %d features, model expects %d",
			x.Cols, m.Scorer.InDim())
	}
	if m.Det != nil {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		return m.Det.Predict(x), m.Generation, nil
	}
	logits, err := m.Scorer.LogitsContext(ctx, x)
	if err != nil {
		return nil, 0, err
	}
	labels := make([]int, logits.Rows)
	for i := range labels {
		labels[i] = logits.RowArgmax(i)
	}
	return labels, m.Generation, nil
}

// craftModel loads a fresh copy of the currently-served model file — the
// default crafting model for white-box campaigns against this daemon. Each
// campaign job gets its own network because gradient crafting mutates
// per-network activation caches.
func (s *Server) craftModel() (*nn.Network, error) {
	m := s.slot.Load()
	if m == nil {
		return nil, errors.New("server: shut down")
	}
	return nn.LoadFile(m.Path)
}

func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var spec campaign.Spec
	if err := dec.Decode(&spec); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.opts.MaxBodyBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return
	}
	snap, err := s.campaigns.Submit(spec)
	if err != nil {
		// Spec problems are the client's (422 invalid_spec);
		// backpressure is 429 queue_full; a closed engine means the
		// daemon is going away (503 unavailable); a target_model the
		// registry does not hold (or holds with nothing live) takes the
		// registry's own taxonomy members.
		status := http.StatusUnprocessableEntity
		code := wire.CodeInvalidSpec
		switch {
		case errors.Is(err, campaign.ErrQueueFull):
			status, code = http.StatusTooManyRequests, wire.CodeQueueFull
		case errors.Is(err, campaign.ErrClosed):
			status, code = http.StatusServiceUnavailable, wire.CodeUnavailable
		case errors.Is(err, registry.ErrUnknownModel):
			status, code = http.StatusNotFound, wire.CodeUnknownModel
		case errors.Is(err, registry.ErrVersionConflict):
			status, code = http.StatusConflict, wire.CodeVersionConflict
		}
		writeErrorCode(w, status, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, snap)
}

// CampaignList answers GET /v1/campaigns.
type CampaignList struct {
	Campaigns []campaign.Snapshot `json:"campaigns"`
}

func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, CampaignList{Campaigns: s.campaigns.List()})
}

func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	offset := 0
	if raw := r.URL.Query().Get("offset"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest,
				"offset must be a non-negative integer, got %q", raw)
			return
		}
		offset = n
	}
	snap, ok := s.campaigns.Get(r.PathValue("id"), offset)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.campaigns.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusAccepted, snap)
}
