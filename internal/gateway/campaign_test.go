package gateway

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"malevade/internal/attack"
	"malevade/internal/campaign"
	"malevade/internal/client"
	"malevade/internal/server"
	"malevade/internal/wire"
)

// campaignSpec builds a deterministic explicit-population campaign: the
// rows and the crafting model are fixed, so the same spec run anywhere
// against the same model file must produce identical per-sample results.
func campaignSpec(modelPath string, samples, batch int) campaign.Spec {
	rng := rand.New(rand.NewSource(11))
	rows := make([][]float64, samples)
	for i := range rows {
		rows[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	return campaign.Spec{
		Name:           "fleet-parity",
		Attack:         attack.Config{Kind: attack.KindFGSM, Theta: 0.4},
		CraftModelPath: modelPath,
		Rows:           rows,
		BatchSize:      batch,
	}
}

func runCampaign(t *testing.T, baseURL string, sp campaign.Spec) campaign.Snapshot {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := fastClient(baseURL)
	snap, err := c.SubmitCampaign(ctx, sp)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := c.WaitCampaign(ctx, snap.ID, client.WaitOptions{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return final
}

// assertCampaignsEqual compares per-sample outcomes, which is the paper's
// currency: the same population judged by the same model must evade (or
// not) identically wherever the judging ran.
func assertCampaignsEqual(t *testing.T, got, want campaign.Snapshot) {
	t.Helper()
	if got.Status != campaign.StatusDone {
		t.Fatalf("campaign status %q (error %q), want done", got.Status, got.Error)
	}
	if got.TotalSamples != want.TotalSamples || got.DoneSamples != want.DoneSamples {
		t.Fatalf("sample counts got %d/%d, want %d/%d",
			got.DoneSamples, got.TotalSamples, want.DoneSamples, want.TotalSamples)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		g, w := got.Results[i], want.Results[i]
		if g.Index != w.Index || g.BaselineDetected != w.BaselineDetected ||
			g.Evaded != w.Evaded || g.CraftEvaded != w.CraftEvaded ||
			g.L2 != w.L2 || g.ModifiedFeatures != w.ModifiedFeatures {
			t.Fatalf("sample %d diverged:\n fleet:  %+v\n single: %+v", i, g, w)
		}
	}
	if got.EvasionRate != want.EvasionRate || got.BaselineDetectionRate != want.BaselineDetectionRate {
		t.Fatalf("rates diverged: evasion %v vs %v, baseline %v vs %v",
			got.EvasionRate, want.EvasionRate, got.BaselineDetectionRate, want.BaselineDetectionRate)
	}
}

// TestGatewayCampaignMatchesSingleDaemon: a campaign fanned out across a
// 2-replica fleet produces sample-for-sample the results of the same
// campaign on one daemon, and every batch stays generation-pinned (the
// snapshot's generation list holds the fleet's one live generation).
func TestGatewayCampaignMatchesSingleDaemon(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	modelPath := saveTestNet(t, dir, "model.gob", []int{3, 8, 2}, 7)
	solo := newReplica(t, server.Options{ModelPath: modelPath})
	r1 := newReplica(t, server.Options{ModelPath: modelPath})
	r2 := newReplica(t, server.Options{ModelPath: modelPath})
	g := newGateway(t, Options{Replicas: []string{r1.URL, r2.URL}})
	gts := httptest.NewServer(g)
	defer gts.Close()

	sp := campaignSpec(modelPath, 24, 4) // 6 batches round-robin across 2 replicas
	want := runCampaign(t, solo.URL, sp)
	got := runCampaign(t, gts.URL, sp)
	assertCampaignsEqual(t, got, want)
	if len(got.Generations) != 1 {
		t.Fatalf("fleet campaign saw generations %v; batches must stay generation-pinned", got.Generations)
	}
	if got.Batches != 6 {
		t.Fatalf("batches = %d, want 6", got.Batches)
	}
}

// TestGatewayCampaignSurvivesReplicaDeath is the failover e2e: one of two
// replicas is killed right after the campaign is submitted. The campaign
// must finish done with zero dropped samples, zero mixed-generation
// batches, and results identical to a single-daemon run — a dead replica
// costs retries, never correctness.
func TestGatewayCampaignSurvivesReplicaDeath(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	modelPath := saveTestNet(t, dir, "model.gob", []int{3, 8, 2}, 7)
	solo := newReplica(t, server.Options{ModelPath: modelPath})
	stable := newReplica(t, server.Options{ModelPath: modelPath})
	doomedSrv, err := server.New(server.Options{ModelPath: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(doomedSrv.Close)
	doomed := httptest.NewServer(doomedSrv)

	g := newGateway(t, Options{
		Replicas:      []string{stable.URL, doomed.URL},
		FailThreshold: 1, // eject the dead replica on its first refused batch
	})
	gts := httptest.NewServer(g)
	defer gts.Close()

	sp := campaignSpec(modelPath, 60, 4) // 15 batches: plenty still queued at kill time
	want := runCampaign(t, solo.URL, sp)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	gc := fastClient(gts.URL)
	snap, err := gc.SubmitCampaign(ctx, sp)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Kill the replica while the campaign runs: drop its live connections
	// and stop accepting new ones.
	doomed.CloseClientConnections()
	doomed.Close()

	got, err := gc.WaitCampaign(ctx, snap.ID, client.WaitOptions{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	assertCampaignsEqual(t, got, want)
	if len(got.Generations) != 1 {
		t.Fatalf("failover campaign saw generations %v; want exactly one", got.Generations)
	}
	if got.DoneSamples != 60 {
		t.Fatalf("dropped samples: done %d of 60", got.DoneSamples)
	}
}

// TestGatewayCampaignNamedTargetUnknownModel: submitting a campaign whose
// target_model no probed replica advertises is refused synchronously with
// the registry taxonomy's 404 unknown_model, exactly like a single daemon
// whose registry lacks the model.
func TestGatewayCampaignNamedTargetUnknownModel(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	modelPath := saveTestNet(t, dir, "model.gob", []int{3, 8, 2}, 7)
	r1 := newReplica(t, server.Options{ModelPath: modelPath})
	g := newGateway(t, Options{Replicas: []string{r1.URL}})
	gts := httptest.NewServer(g)
	defer gts.Close()

	sp := campaignSpec(modelPath, 8, 4)
	sp.TargetModel = "nobody-has-this"
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := fastClient(gts.URL).SubmitCampaign(ctx, sp)
	var we *wire.Error
	if !errors.As(err, &we) || we.Status != 404 || we.Code != wire.CodeUnknownModel {
		t.Fatalf("submit err = %v, want 404 %s", err, wire.CodeUnknownModel)
	}
}
