package gateway

import (
	"context"
	"sync"
	"time"

	"malevade/internal/client"
)

// The prober is the gateway's only source of "up" transitions: a down
// replica re-enters rotation after Options.UpThreshold consecutive
// successful health probes. "Down" transitions are fed by both probes and
// live traffic — Options.FailThreshold consecutive failures from either
// source eject a replica — so a replica that dies between probe ticks
// stops receiving traffic after at most FailThreshold failed requests,
// not after the next tick.

func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

// Probe runs one synchronous probe round on demand, in addition to the
// background prober's schedule. The gateway command wires it to SIGHUP so
// an operator can force a recovered replica back into rotation without
// waiting out UpThreshold probe intervals; tests use it to step the fleet
// state machine deterministically.
func (g *Gateway) Probe() { g.probeAll() }

// probeAll probes every replica concurrently and waits for the round to
// finish — New relies on that for a deterministic first view of the fleet.
func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for _, r := range g.replicas {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			g.probe(r)
		}(r)
	}
	wg.Wait()
}

func (g *Gateway) probe(r *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.ProbeTimeout)
	defer cancel()
	h, err := r.c.Health(ctx)
	if err != nil {
		g.reportFailure(r, err)
		return
	}
	if h.Status != "ok" {
		g.reportFailure(r, &notServingError{status: h.Status})
		return
	}
	g.reportSuccess(r, h)
}

// notServingError marks a reachable replica that reports itself not
// serving (draining, shut down) — a health failure without a transport
// failure.
type notServingError struct{ status string }

func (e *notServingError) Error() string { return "replica health status " + e.status }

// reportSuccess records one successful probe. Live traffic does not call
// this: an up replica needs no reinforcement, and a down replica must
// prove itself over UpThreshold probes rather than one lucky request.
func (g *Gateway) reportSuccess(r *replica, h client.Health) {
	r.mu.Lock()
	r.consecFail = 0
	r.lastErr = ""
	r.generation = h.ModelVersion
	r.models = make(map[string]bool, len(h.ModelNames))
	for _, name := range h.ModelNames {
		r.models[name] = true
	}
	transitioned := false
	if !r.up {
		r.consecOK++
		if r.consecOK >= g.opts.UpThreshold {
			r.up = true
			transitioned = true
		}
	}
	r.mu.Unlock()
	if transitioned {
		g.transitions.With(r.url, "up").Inc()
		g.log.Info("replica up",
			"replica", r.url, "generation", h.ModelVersion)
	}
}

// noteTrafficOK resets r's consecutive-failure count after a proxied
// request the replica answered. It never transitions a replica up — only
// the prober does that — but it keeps sporadic transport blips spread
// across a probe interval from summing to a spurious ejection.
func (r *replica) noteTrafficOK() {
	r.mu.Lock()
	r.consecFail = 0
	r.mu.Unlock()
}

// reportFailure records one failed probe or one failed proxied request
// against r's consecutive-failure count.
func (g *Gateway) reportFailure(r *replica, err error) {
	r.failed.Add(1)
	r.mu.Lock()
	r.consecOK = 0
	r.consecFail++
	r.lastErr = err.Error()
	transitioned := false
	if r.up && r.consecFail >= g.opts.FailThreshold {
		r.up = false
		transitioned = true
	}
	r.mu.Unlock()
	if transitioned {
		g.transitions.With(r.url, "down").Inc()
		g.log.Warn("replica down",
			"replica", r.url, "error", err.Error())
	}
}
