// Package gateway is the fleet front tier of the malevade serving stack:
// one HTTP process that speaks the daemon's own wire API — /v1/score,
// /v1/label (JSON and binary rows frames, proxied without re-encoding),
// /healthz, /v1/stats and the asynchronous /v1/campaigns API — and serves
// it by routing across N scoring-daemon replicas. The paper's deployed
// detector stops being one process: the gateway health-probes a static
// replica list, marks members up and down on consecutive-failure/success
// thresholds, load-balances scoring traffic round-robin with bounded
// retry-on-next-replica for idempotent calls, routes model-addressed
// requests to replicas whose registries advertise the model, fans
// campaign populations out across the fleet one generation-pinned batch
// at a time, and aggregates /v1/stats fleet-wide.
//
// The gateway is a pure consumer of the client SDK (internal/client): it
// holds no model, no registry and no scoring engine, and everything it
// says to a replica travels the same typed client a remote attacker would
// use. Errors it originates speak the wire taxonomy — 502 bad_gateway
// when every healthy replica failed to answer, 503 no_replicas (a
// refinement of unavailable) when the fleet has no healthy member.
package gateway

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"malevade/internal/campaign"
	"malevade/internal/client"
	"malevade/internal/nn"
	"malevade/internal/wire"
)

// Options configures a Gateway. Replicas is required; everything else has
// defaults sized for a small LAN fleet.
type Options struct {
	// Replicas lists the scoring daemons' base URLs, e.g.
	// "http://10.0.0.7:8446". Required, at least one.
	Replicas []string
	// NewClient builds the SDK client for one replica (nil = client.New).
	// Tests inject clients with tightened limits here.
	NewClient func(baseURL string) *client.Client
	// ProbeInterval is how often each replica is health-probed
	// (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive failures — probes or live
	// traffic — mark an up replica down (default 2).
	FailThreshold int
	// UpThreshold is how many consecutive successful probes mark a down
	// replica up again (default 1).
	UpThreshold int
	// MaxBodyBytes caps proxied request bodies (default 32 MiB, matching
	// the daemon's own default). Larger bodies are refused with 413
	// before any replica sees them.
	MaxBodyBytes int64
	// Retries bounds how many additional replicas an idempotent scoring
	// call is retried against after a failure (default 2; negative
	// disables failover). The fleet size bounds it implicitly — each
	// replica is tried at most once per request.
	Retries int
	// CraftModelPath names the default crafting model file (nn.SaveFile)
	// for campaigns whose spec carries no craft_model_path. The gateway
	// holds no model of its own, so white-box-by-default crafting needs
	// an explicit file; empty means such specs fail.
	CraftModelPath string
	// Campaigns tunes the gateway's campaign engine (workers, queue
	// depth, sample caps). Target factories left nil are filled with
	// fleet-routing implementations.
	Campaigns campaign.Options
	// Log, when non-nil, receives one line per replica state transition.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.NewClient == nil {
		o.NewClient = client.New
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.UpThreshold <= 0 {
		o.UpThreshold = 1
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	switch {
	case o.Retries == 0:
		o.Retries = 2
	case o.Retries < 0:
		o.Retries = 0
	}
	return o
}

// replica is one fleet member: its SDK client plus the prober's view of
// its health. The identity fields are immutable; everything behind mu is
// shared between the prober, the proxy path and the campaign target.
type replica struct {
	url string
	c   *client.Client

	mu         sync.Mutex
	up         bool
	consecFail int
	consecOK   int
	lastErr    string
	generation int64
	models     map[string]bool // registry models this replica advertises

	served atomic.Int64 // proxied scoring calls this replica answered
	failed atomic.Int64 // proxied/probe calls this replica failed
}

func (r *replica) isUp() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.up
}

func (r *replica) hasModel(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.models[name]
}

// Gateway is the fleet front tier. Create with New, serve with any
// http.Server (it implements http.Handler), and Close when done.
type Gateway struct {
	opts     Options
	replicas []*replica
	mux      *http.ServeMux

	campaigns *campaign.Engine

	rr      atomic.Uint64 // round-robin cursor
	started time.Time
	closed  atomic.Bool
	stop    chan struct{}
	wg      sync.WaitGroup

	requests atomic.Int64 // scoring calls proxied (success or relayed refusal)
	rejected atomic.Int64 // scoring calls the gateway itself refused (4xx)
	retries  atomic.Int64 // retry-on-next-replica occurrences
}

// New builds a gateway over opts.Replicas, runs one synchronous probe
// round (so a fleet that is already serving is routable immediately), and
// starts the background prober.
func New(opts Options) (*Gateway, error) {
	opts = opts.withDefaults()
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: Options.Replicas is required")
	}
	g := &Gateway{
		opts:    opts,
		started: time.Now(),
		stop:    make(chan struct{}),
	}
	seen := make(map[string]bool, len(opts.Replicas))
	for _, raw := range opts.Replicas {
		url := strings.TrimRight(strings.TrimSpace(raw), "/")
		if url == "" {
			return nil, fmt.Errorf("gateway: empty replica URL")
		}
		if seen[url] {
			return nil, fmt.Errorf("gateway: duplicate replica %s", url)
		}
		seen[url] = true
		g.replicas = append(g.replicas, &replica{url: url, c: opts.NewClient(url)})
	}

	campaignOpts := opts.Campaigns
	if campaignOpts.LocalTarget == nil {
		campaignOpts.LocalTarget = &fleetTarget{g: g}
	}
	if campaignOpts.NamedTarget == nil {
		campaignOpts.NamedTarget = g.namedTarget
	}
	if campaignOpts.RemoteTarget == nil {
		campaignOpts.RemoteTarget = func(baseURL string) (campaign.Target, error) {
			return client.NewRemoteTarget(baseURL), nil
		}
	}
	if campaignOpts.CraftModel == nil {
		path := opts.CraftModelPath
		campaignOpts.CraftModel = func() (*nn.Network, error) {
			if path == "" {
				return nil, fmt.Errorf("gateway: spec names no craft_model_path and the gateway was started without -craft-model")
			}
			return nn.LoadFile(path)
		}
	}
	g.campaigns = campaign.NewEngine(campaignOpts)

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("/v1/score", func(w http.ResponseWriter, r *http.Request) { g.proxyScoring(w, r, "/v1/score") })
	g.mux.HandleFunc("/v1/label", func(w http.ResponseWriter, r *http.Request) { g.proxyScoring(w, r, "/v1/label") })
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/v1/stats", g.handleStats)
	g.mux.HandleFunc("POST /v1/campaigns", g.handleCampaignSubmit)
	g.mux.HandleFunc("GET /v1/campaigns", g.handleCampaignList)
	g.mux.HandleFunc("GET /v1/campaigns/{id}", g.handleCampaignGet)
	g.mux.HandleFunc("DELETE /v1/campaigns/{id}", g.handleCampaignCancel)

	g.probeAll() // synchronous first round: healthy replicas are up before New returns
	g.wg.Add(1)
	go g.probeLoop()
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.closed.Load() {
		wire.WriteError(w, http.StatusServiceUnavailable, "gateway is shut down")
		return
	}
	g.mux.ServeHTTP(w, r)
}

// Close stops the prober, cancels running campaigns and drains the
// campaign workers. Subsequent requests are answered 503. Idempotent.
func (g *Gateway) Close() {
	if g.closed.Swap(true) {
		return
	}
	close(g.stop)
	g.wg.Wait()
	g.campaigns.Close()
}

func (g *Gateway) logf(format string, args ...any) {
	if g.opts.Log != nil {
		fmt.Fprintf(g.opts.Log, format, args...)
	}
}

// healthy snapshots the replicas currently marked up.
func (g *Gateway) healthy() []*replica {
	out := make([]*replica, 0, len(g.replicas))
	for _, r := range g.replicas {
		if r.isUp() {
			out = append(out, r)
		}
	}
	return out
}

// pick selects the next replica for one attempt: round-robin over healthy
// replicas not yet tried this request, preferring — when the request
// addresses a registry model — replicas that advertise it. When no
// healthy replica advertises the model, every healthy replica is a
// candidate: advertisement data is only as fresh as the last probe, and
// the replica's own 404 unknown_model is the authoritative answer.
func (g *Gateway) pick(model string, tried map[*replica]bool) *replica {
	up := g.healthy()
	candidates := up
	if model != "" {
		advertising := make([]*replica, 0, len(up))
		for _, r := range up {
			if r.hasModel(model) {
				advertising = append(advertising, r)
			}
		}
		if len(advertising) > 0 {
			candidates = advertising
		}
	}
	n := len(candidates)
	if n == 0 {
		return nil
	}
	start := int(g.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		r := candidates[(start+i)%n]
		if !tried[r] {
			return r
		}
	}
	return nil
}
