// Package gateway is the fleet front tier of the malevade serving stack:
// one HTTP process that speaks the daemon's own wire API — /v1/score,
// /v1/label (JSON and binary rows frames, proxied without re-encoding),
// /healthz, /v1/stats and the asynchronous /v1/campaigns API — and serves
// it by routing across N scoring-daemon replicas. The paper's deployed
// detector stops being one process: the gateway health-probes a static
// replica list, marks members up and down on consecutive-failure/success
// thresholds, load-balances scoring traffic round-robin with bounded
// retry-on-next-replica for idempotent calls, routes model-addressed
// requests to replicas whose registries advertise the model, fans
// campaign populations out across the fleet one generation-pinned batch
// at a time, and aggregates /v1/stats fleet-wide.
//
// The gateway is a pure consumer of the client SDK (internal/client): it
// holds no model, no registry and no scoring engine, and everything it
// says to a replica travels the same typed client a remote attacker would
// use. Errors it originates speak the wire taxonomy — 502 bad_gateway
// when every healthy replica failed to answer, 503 no_replicas (a
// refinement of unavailable) when the fleet has no healthy member.
package gateway

import (
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"malevade/internal/campaign"
	"malevade/internal/client"
	"malevade/internal/nn"
	"malevade/internal/obs"
	"malevade/internal/wire"
)

// Options configures a Gateway. Replicas is required; everything else has
// defaults sized for a small LAN fleet.
type Options struct {
	// Replicas lists the scoring daemons' base URLs, e.g.
	// "http://10.0.0.7:8446". Required, at least one.
	Replicas []string
	// NewClient builds the SDK client for one replica (nil = client.New).
	// Tests inject clients with tightened limits here.
	NewClient func(baseURL string) *client.Client
	// ProbeInterval is how often each replica is health-probed
	// (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive failures — probes or live
	// traffic — mark an up replica down (default 2).
	FailThreshold int
	// UpThreshold is how many consecutive successful probes mark a down
	// replica up again (default 1).
	UpThreshold int
	// MaxBodyBytes caps proxied request bodies (default 32 MiB, matching
	// the daemon's own default). Larger bodies are refused with 413
	// before any replica sees them.
	MaxBodyBytes int64
	// Retries bounds how many additional replicas an idempotent scoring
	// call is retried against after a failure (default 2; negative
	// disables failover). The fleet size bounds it implicitly — each
	// replica is tried at most once per request.
	Retries int
	// CraftModelPath names the default crafting model file (nn.SaveFile)
	// for campaigns whose spec carries no craft_model_path. The gateway
	// holds no model of its own, so white-box-by-default crafting needs
	// an explicit file; empty means such specs fail.
	CraftModelPath string
	// Campaigns tunes the gateway's campaign engine (workers, queue
	// depth, sample caps). Target factories left nil are filled with
	// fleet-routing implementations.
	Campaigns campaign.Options
	// Obs, when set, is the metrics registry the gateway records into and
	// serves at GET /metrics; nil makes the gateway create a private one.
	Obs *obs.Registry
	// Logger receives structured lifecycle events (boot, replica up/down
	// transitions, campaign job transitions) and per-request access logs
	// carrying X-Malevade-Request-Id. Nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.NewClient == nil {
		o.NewClient = client.New
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.UpThreshold <= 0 {
		o.UpThreshold = 1
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	switch {
	case o.Retries == 0:
		o.Retries = 2
	case o.Retries < 0:
		o.Retries = 0
	}
	return o
}

// replica is one fleet member: its SDK client plus the prober's view of
// its health. The identity fields are immutable; everything behind mu is
// shared between the prober, the proxy path and the campaign target.
type replica struct {
	url string
	c   *client.Client

	mu         sync.Mutex
	up         bool
	consecFail int
	consecOK   int
	lastErr    string
	generation int64
	models     map[string]bool // registry models this replica advertises

	served atomic.Int64 // proxied scoring calls this replica answered
	failed atomic.Int64 // proxied/probe calls this replica failed
}

func (r *replica) isUp() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.up
}

func (r *replica) hasModel(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.models[name]
}

// Gateway is the fleet front tier. Create with New, serve with any
// http.Server (it implements http.Handler), and Close when done.
type Gateway struct {
	opts     Options
	replicas []*replica
	mux      *http.ServeMux

	campaigns *campaign.Engine

	rr      atomic.Uint64 // round-robin cursor
	started time.Time
	closed  atomic.Bool
	stop    chan struct{}
	wg      sync.WaitGroup

	// obs is the registry behind GET /metrics; /v1/stats reads the same
	// counters back through Value(). handler is the mux wrapped in the
	// shared HTTP middleware (request counts, latency, request IDs).
	obs     *obs.Registry
	log     *slog.Logger
	handler http.Handler

	requests    *obs.Counter    // scoring calls proxied (success or relayed refusal)
	rejected    *obs.Counter    // scoring calls the gateway itself refused (4xx)
	retries     *obs.Counter    // retry-on-next-replica occurrences
	transitions *obs.CounterVec // replica up/down flips, by replica and direction
}

// New builds a gateway over opts.Replicas, runs one synchronous probe
// round (so a fleet that is already serving is routable immediately), and
// starts the background prober.
func New(opts Options) (*Gateway, error) {
	opts = opts.withDefaults()
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: Options.Replicas is required")
	}
	g := &Gateway{
		opts:    opts,
		started: time.Now(),
		stop:    make(chan struct{}),
	}
	g.obs = opts.Obs
	if g.obs == nil {
		g.obs = obs.NewRegistry()
	}
	g.log = obs.Or(opts.Logger)
	g.requests = g.obs.Counter("malevade_gateway_requests_total",
		"Scoring calls the gateway proxied to a replica (including relayed refusals).")
	g.rejected = g.obs.Counter("malevade_gateway_rejected_total",
		"Scoring calls the gateway itself refused with a 4xx before any replica.")
	g.retries = g.obs.Counter("malevade_gateway_retries_total",
		"Retry-on-next-replica occurrences across all proxied calls.")
	g.transitions = g.obs.CounterVec("malevade_gateway_replica_transitions_total",
		"Replica health-state flips recorded by the prober, by direction.",
		"replica", "state")
	seen := make(map[string]bool, len(opts.Replicas))
	for _, raw := range opts.Replicas {
		url := strings.TrimRight(strings.TrimSpace(raw), "/")
		if url == "" {
			return nil, fmt.Errorf("gateway: empty replica URL")
		}
		if seen[url] {
			return nil, fmt.Errorf("gateway: duplicate replica %s", url)
		}
		seen[url] = true
		g.replicas = append(g.replicas, &replica{url: url, c: opts.NewClient(url)})
	}

	campaignOpts := opts.Campaigns
	if campaignOpts.Obs == nil {
		campaignOpts.Obs = g.obs
	}
	if campaignOpts.Logger == nil {
		campaignOpts.Logger = opts.Logger
	}
	if campaignOpts.LocalTarget == nil {
		campaignOpts.LocalTarget = &fleetTarget{g: g}
	}
	if campaignOpts.NamedTarget == nil {
		campaignOpts.NamedTarget = g.namedTarget
	}
	if campaignOpts.RemoteTarget == nil {
		campaignOpts.RemoteTarget = func(baseURL string) (campaign.Target, error) {
			return client.NewRemoteTarget(baseURL), nil
		}
	}
	if campaignOpts.CraftModel == nil {
		path := opts.CraftModelPath
		campaignOpts.CraftModel = func() (*nn.Network, error) {
			if path == "" {
				return nil, fmt.Errorf("gateway: spec names no craft_model_path and the gateway was started without -craft-model")
			}
			return nn.LoadFile(path)
		}
	}
	g.campaigns = campaign.NewEngine(campaignOpts)

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("/v1/score", func(w http.ResponseWriter, r *http.Request) { g.proxyScoring(w, r, "/v1/score") })
	g.mux.HandleFunc("/v1/label", func(w http.ResponseWriter, r *http.Request) { g.proxyScoring(w, r, "/v1/label") })
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/v1/stats", g.handleStats)
	g.mux.HandleFunc("POST /v1/campaigns", g.handleCampaignSubmit)
	g.mux.HandleFunc("GET /v1/campaigns", g.handleCampaignList)
	g.mux.HandleFunc("GET /v1/campaigns/{id}", g.handleCampaignGet)
	g.mux.HandleFunc("DELETE /v1/campaigns/{id}", g.handleCampaignCancel)
	g.mux.Handle("GET /metrics", g.obs.Handler())
	g.registerFuncMetrics()
	g.handler = obs.NewHTTP(g.obs, opts.Logger, nil).Wrap(g.mux)

	g.probeAll() // synchronous first round: healthy replicas are up before New returns
	g.wg.Add(1)
	go g.probeLoop()
	g.log.Info("gateway ready",
		"replicas", len(g.replicas),
		"replicas_up", len(g.healthy()),
		"retries", opts.Retries,
	)
	return g, nil
}

// registerFuncMetrics exposes routing state the gateway already
// maintains — per-replica served/failed counters and fleet size — as
// callback metrics so scrapes and /v1/stats read identical sources.
func (g *Gateway) registerFuncMetrics() {
	g.obs.GaugeFunc("malevade_uptime_seconds",
		"Seconds since the gateway process booted.",
		func() float64 { return time.Since(g.started).Seconds() })
	g.obs.GaugeFunc("malevade_gateway_replicas",
		"Replicas configured in the fleet.",
		func() float64 { return float64(len(g.replicas)) })
	g.obs.GaugeFunc("malevade_gateway_replicas_up",
		"Replicas currently in rotation.",
		func() float64 { return float64(len(g.healthy())) })
	g.obs.CounterFunc("malevade_gateway_campaigns_submitted_total",
		"Adversarial campaigns accepted by the gateway's own engine.",
		func() float64 { return float64(g.campaigns.Submitted()) })
	g.obs.CounterVecFunc("malevade_gateway_replica_served_total",
		"Proxied scoring calls each replica answered.", "replica",
		func() map[string]float64 {
			out := make(map[string]float64, len(g.replicas))
			for _, r := range g.replicas {
				out[r.url] = float64(r.served.Load())
			}
			return out
		})
	g.obs.CounterVecFunc("malevade_gateway_replica_failed_total",
		"Probe and traffic failures charged to each replica.", "replica",
		func() map[string]float64 {
			out := make(map[string]float64, len(g.replicas))
			for _, r := range g.replicas {
				out[r.url] = float64(r.failed.Load())
			}
			return out
		})
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.closed.Load() {
		wire.WriteError(w, http.StatusServiceUnavailable, "gateway is shut down")
		return
	}
	g.handler.ServeHTTP(w, r)
}

// Close stops the prober, cancels running campaigns and drains the
// campaign workers. Subsequent requests are answered 503. Idempotent.
func (g *Gateway) Close() {
	if g.closed.Swap(true) {
		return
	}
	close(g.stop)
	g.wg.Wait()
	g.campaigns.Close()
	g.log.Info("gateway shut down",
		"uptime_seconds", time.Since(g.started).Seconds())
}

// healthy snapshots the replicas currently marked up.
func (g *Gateway) healthy() []*replica {
	out := make([]*replica, 0, len(g.replicas))
	for _, r := range g.replicas {
		if r.isUp() {
			out = append(out, r)
		}
	}
	return out
}

// pick selects the next replica for one attempt: round-robin over healthy
// replicas not yet tried this request, preferring — when the request
// addresses a registry model — replicas that advertise it. When no
// healthy replica advertises the model, every healthy replica is a
// candidate: advertisement data is only as fresh as the last probe, and
// the replica's own 404 unknown_model is the authoritative answer.
func (g *Gateway) pick(model string, tried map[*replica]bool) *replica {
	up := g.healthy()
	candidates := up
	if model != "" {
		advertising := make([]*replica, 0, len(up))
		for _, r := range up {
			if r.hasModel(model) {
				advertising = append(advertising, r)
			}
		}
		if len(advertising) > 0 {
			candidates = advertising
		}
	}
	n := len(candidates)
	if n == 0 {
		return nil
	}
	start := int(g.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		r := candidates[(start+i)%n]
		if !tried[r] {
			return r
		}
	}
	return nil
}
