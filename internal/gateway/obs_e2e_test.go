package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"malevade/internal/obs"
	"malevade/internal/server"
)

// syncBuffer is a goroutine-safe log sink: the daemon and gateway log
// from request goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// requestIDsIn extracts the request_id field from every JSON access-log
// line for the given path.
func requestIDsIn(t *testing.T, logs, path string) []string {
	t.Helper()
	var ids []string
	sc := bufio.NewScanner(strings.NewReader(logs))
	for sc.Scan() {
		var line struct {
			Msg       string `json:"msg"`
			Path      string `json:"path"`
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			continue
		}
		if line.Msg == "http request" && line.Path == path {
			ids = append(ids, line.RequestID)
		}
	}
	return ids
}

// TestRequestIDFollowsFleet pins the tracing contract end to end: one
// scoring call entering the gateway carries a single request ID through
// the gateway's access log, the replica daemon's access log, and the
// response header the caller sees — the ID is minted once at the edge
// and propagated verbatim by the relay and the SDK underneath it.
func TestRequestIDFollowsFleet(t *testing.T) {
	modelPath := saveTestNet(t, t.TempDir(), "m.gob", []int{3, 8, 2}, 7)

	var replicaLogs, gatewayLogs syncBuffer
	replicaLogger, err := obs.NewLogger(&replicaLogs, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	gatewayLogger, err := obs.NewLogger(&gatewayLogs, "info", "json")
	if err != nil {
		t.Fatal(err)
	}

	replica := newReplica(t, server.Options{ModelPath: modelPath, Logger: replicaLogger})
	g := newGateway(t, Options{
		Replicas:  []string{replica.URL},
		NewClient: fastClient,
		Logger:    gatewayLogger,
	})
	gts := httptest.NewServer(g)
	defer gts.Close()

	req, err := http.NewRequest(http.MethodPost, gts.URL+"/v1/score",
		strings.NewReader(`{"rows":[[0.1,0.2,0.3]]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score via gateway: status %d", resp.StatusCode)
	}
	id := resp.Header.Get(obs.RequestIDHeader)
	if !obs.ValidRequestID(id) {
		t.Fatalf("gateway response ID %q is not valid", id)
	}

	gwIDs := requestIDsIn(t, gatewayLogs.String(), "/v1/score")
	if len(gwIDs) != 1 || gwIDs[0] != id {
		t.Fatalf("gateway access log IDs %v, want exactly [%s]\nlogs:\n%s",
			gwIDs, id, gatewayLogs.String())
	}
	repIDs := requestIDsIn(t, replicaLogs.String(), "/v1/score")
	if len(repIDs) != 1 || repIDs[0] != id {
		t.Fatalf("replica access log IDs %v, want exactly [%s]\nlogs:\n%s",
			repIDs, id, replicaLogs.String())
	}

	// A caller-supplied ID wins over minting at every tier.
	req, err = http.NewRequest(http.MethodPost, gts.URL+"/v1/score",
		strings.NewReader(`{"rows":[[0.1,0.2,0.3]]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "caller-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "caller-7" {
		t.Fatalf("caller-supplied ID not propagated: got %q", got)
	}
	if ids := requestIDsIn(t, replicaLogs.String(), "/v1/score"); len(ids) != 2 || ids[1] != "caller-7" {
		t.Fatalf("replica access log IDs %v, want caller-7 last", ids)
	}
}

// TestGatewayMetrics scrapes the gateway's own GET /metrics after
// proxied traffic and checks the fleet counters agree with /v1/stats'
// gateway_* fields, the per-replica families carry the replica URL as a
// label, and the exposition is lint-clean.
func TestGatewayMetrics(t *testing.T) {
	modelPath := saveTestNet(t, t.TempDir(), "m.gob", []int{3, 8, 2}, 7)
	replica := newReplica(t, server.Options{ModelPath: modelPath})
	g := newGateway(t, Options{Replicas: []string{replica.URL}, NewClient: fastClient})
	gts := httptest.NewServer(g)
	defer gts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Post(gts.URL+"/v1/score", "application/json",
			strings.NewReader(`{"rows":[[0,0,0]]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(gts.URL + "/v1/metrics-nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var stats StatsResponse
	resp, err = http.Get(gts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(gts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("GET /metrics Content-Type %q, want %q", got, obs.ContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	raw := buf.Bytes()
	if problems := obs.Lint(raw); len(problems) != 0 {
		t.Fatalf("gateway scrape lint: %v", problems)
	}
	samples, err := obs.ParseText(raw)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	served := map[string]float64{}
	for _, s := range samples {
		if len(s.Labels) == 0 {
			byName[s.Name] = s.Value
		}
		if s.Name == "malevade_gateway_replica_served_total" {
			served[s.Labels["replica"]] = s.Value
		}
	}
	if got := int64(byName["malevade_gateway_requests_total"]); got != stats.GatewayRequests {
		t.Errorf("gateway_requests: metrics %d, stats %d", got, stats.GatewayRequests)
	}
	if got := int64(byName["malevade_gateway_retries_total"]); got != stats.GatewayRetries {
		t.Errorf("gateway_retries: metrics %d, stats %d", got, stats.GatewayRetries)
	}
	if byName["malevade_gateway_replicas"] != 1 || byName["malevade_gateway_replicas_up"] != 1 {
		t.Errorf("fleet gauges: replicas %v up %v, want 1/1",
			byName["malevade_gateway_replicas"], byName["malevade_gateway_replicas_up"])
	}
	if served[replica.URL] < 3 {
		t.Errorf("replica_served_total{replica=%q} = %v, want >= 3",
			replica.URL, served[replica.URL])
	}
	if byName["malevade_gateway_replica_transitions_total"] != 0 {
		// Unlabeled lookup must miss — transitions are labeled — but the
		// family should exist with the up flip from the first probe.
		t.Errorf("unexpected unlabeled transitions sample")
	}
	var sawUpFlip bool
	for _, s := range samples {
		if s.Name == "malevade_gateway_replica_transitions_total" &&
			s.Labels["state"] == "up" && s.Labels["replica"] == replica.URL && s.Value >= 1 {
			sawUpFlip = true
		}
	}
	if !sawUpFlip {
		t.Errorf("no up transition recorded for %s:\n%s", replica.URL, raw)
	}
}
