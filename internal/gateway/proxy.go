package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"mime"
	"net/http"

	"malevade/internal/client"
	"malevade/internal/wire"
)

// proxyScoring serves POST /v1/score and /v1/label by relaying the request
// body — JSON or binary rows frame, byte-for-byte, no re-encoding — to one
// healthy replica via the SDK's raw exchange, and relaying that replica's
// response (status, content type, body) back verbatim. Scoring is
// idempotent, so a replica that fails at the transport level or answers
// 5xx costs one bounded retry against the next healthy replica; a 4xx is
// the replica's authoritative refusal of this request and is relayed
// immediately. The generation-pinning contract survives trivially: each
// request is answered wholly by one replica, so the daemon's own
// one-generation-per-response guarantee carries through.
func (g *Gateway) proxyScoring(w http.ResponseWriter, r *http.Request, path string) {
	if r.Method != http.MethodPost {
		g.rejected.Inc()
		w.Header().Set("Allow", http.MethodPost)
		wire.WriteError(w, http.StatusMethodNotAllowed, "%s requires POST", path)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.opts.MaxBodyBytes))
	if err != nil {
		g.rejected.Inc()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			wire.WriteError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", g.opts.MaxBodyBytes)
			return
		}
		wire.WriteError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	contentType := r.Header.Get("Content-Type")
	if !validHeaderValue(contentType) {
		// The transport would refuse to send this header; failing the
		// request here keeps a hostile Content-Type from being charged
		// to a replica as a transport failure.
		g.rejected.Inc()
		wire.WriteError(w, http.StatusBadRequest, "invalid Content-Type header value")
		return
	}
	res, gwErr := g.exchange(r.Context(), http.MethodPost, path, contentType, body)
	if gwErr != nil {
		if errors.Is(gwErr, context.Canceled) {
			return // caller went away; nothing useful to write
		}
		var we *wire.Error
		if errors.As(gwErr, &we) {
			wire.WriteErrorCode(w, we.Status, we.Code, "%s", we.Msg)
			return
		}
		wire.WriteError(w, http.StatusInternalServerError, "%v", gwErr)
		return
	}
	g.requests.Inc()
	if res.ContentType != "" {
		w.Header().Set("Content-Type", res.ContentType)
	}
	w.WriteHeader(res.Status)
	w.Write(res.Body)
}

// exchange runs one idempotent raw call against the fleet: pick a healthy
// replica (model-affine when the body addresses a registry model), relay,
// and on transport failure or a 5xx answer retry against the next healthy
// replica up to Options.Retries times. The error, when non-nil, is either
// ctx's cancellation or a *wire.Error the caller can render: 503
// no_replicas when the fleet had no healthy member, 502 bad_gateway when
// every attempt failed in transit.
func (g *Gateway) exchange(ctx context.Context, method, path, contentType string, body []byte) (client.RawResult, error) {
	model := sniffModel(contentType, body)
	tried := make(map[*replica]bool)
	var (
		lastRes   client.RawResult
		haveRes   bool
		lastErr   error
		attempted int
	)
	for attempted <= g.opts.Retries {
		r := g.pick(model, tried)
		if r == nil {
			break
		}
		tried[r] = true
		if attempted > 0 {
			g.retries.Inc()
		}
		attempted++
		res, err := r.c.Raw(ctx, method, path, contentType, body)
		if err != nil {
			if ctx.Err() != nil {
				return client.RawResult{}, context.Cause(ctx)
			}
			g.reportFailure(r, err)
			lastErr = err
			continue
		}
		if res.Status >= http.StatusInternalServerError {
			// The replica answered, but with a server-side fault; keep
			// its envelope as a last resort and try the next replica.
			// Neither a success (it must not reset the prober's failure
			// streak on a sick replica) nor a transport failure.
			lastRes, haveRes = res, true
			continue
		}
		r.noteTrafficOK()
		r.served.Add(1)
		return res, nil
	}
	if haveRes {
		return lastRes, nil
	}
	if len(tried) == 0 {
		return client.RawResult{}, &wire.Error{
			Status: http.StatusServiceUnavailable,
			Code:   wire.CodeNoReplicas,
			Msg:    "no healthy replicas",
		}
	}
	return client.RawResult{}, &wire.Error{
		Status: http.StatusBadGateway,
		Code:   wire.CodeBadGateway,
		Msg:    "all replicas failed: " + lastErr.Error(),
	}
}

// validHeaderValue reports whether s is a legal HTTP header field value
// (the net/http transport's own rule: visible ASCII plus tab and space;
// no control bytes, no DEL).
func validHeaderValue(s string) bool {
	for i := 0; i < len(s); i++ {
		b := s[i]
		if (b < 0x20 && b != '\t') || b == 0x7f {
			return false
		}
	}
	return true
}

// sniffModel extracts the addressed registry model from a scoring request
// body so the gateway can prefer replicas that serve it. Best-effort by
// design: a body this function cannot parse is still proxied — the replica
// is the authority on validity — so sniffing must never reject.
func sniffModel(contentType string, body []byte) string {
	mt := contentType
	if parsed, _, err := mime.ParseMediaType(contentType); err == nil {
		mt = parsed
	}
	if mt == wire.ContentTypeRowsF32 {
		f, err := wire.ParseFrame(body)
		if err != nil {
			return ""
		}
		return f.Model
	}
	var probe struct {
		Model string `json:"model"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return ""
	}
	return probe.Model
}
