package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"malevade/internal/client"
	"malevade/internal/nn"
	"malevade/internal/server"
	"malevade/internal/wire"
)

// saveTestNet writes a small deterministic MLP and returns its path.
func saveTestNet(t testing.TB, dir, name string, dims []int, seed uint64) string {
	t.Helper()
	net, err := nn.NewMLP(nn.MLPConfig{Dims: dims, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// newReplica starts one real scoring daemon over modelPath and returns its
// HTTP server. Callers close ts; the daemon closes via t.Cleanup.
func newReplica(t testing.TB, opts server.Options) *httptest.Server {
	t.Helper()
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// fastClient keeps test retries quick.
func fastClient(url string) *client.Client {
	c := client.New(url)
	c.RetryBackoff = time.Millisecond
	return c
}

// newGateway builds a gateway whose prober only runs when the test calls
// Probe() (interval = 1h), so fleet-state transitions are deterministic.
func newGateway(t testing.TB, opts Options) *Gateway {
	t.Helper()
	if opts.NewClient == nil {
		opts.NewClient = fastClient
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = time.Hour
	}
	if opts.ProbeTimeout == 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	g, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func postRaw(t testing.TB, h http.Handler, path, contentType string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func getJSON(t testing.TB, h http.Handler, path string, out any) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", path, err, w.Body.Bytes())
		}
	}
	return w.Code
}

// TestGatewayBitIdenticalToSingleDaemon is the fleet-parity contract: a
// 2-replica fleet behind the gateway must answer /v1/score and /v1/label —
// JSON and binary rows frames alike — byte-for-byte identically to one
// daemon serving the same model file, across several requests so both
// replicas take turns answering.
func TestGatewayBitIdenticalToSingleDaemon(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	modelPath := saveTestNet(t, dir, "model.gob", []int{3, 8, 2}, 7)
	reference, err := server.New(server.Options{ModelPath: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	defer reference.Close()
	r1 := newReplica(t, server.Options{ModelPath: modelPath})
	r2 := newReplica(t, server.Options{ModelPath: modelPath})
	g := newGateway(t, Options{Replicas: []string{r1.URL, r2.URL}})

	jsonBody := []byte(`{"rows":[[0.9,0.1,0.4],[0.2,0.8,0.6],[0,1,1]]}`)
	frame, err := wire.AppendFrame(nil, "", 3, 3, []float32{0.9, 0.1, 0.4, 0.2, 0.8, 0.6, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		path, contentType string
		body              []byte
	}{
		{"/v1/score", wire.ContentTypeJSON, jsonBody},
		{"/v1/label", wire.ContentTypeJSON, jsonBody},
		{"/v1/score", wire.ContentTypeRowsF32, frame},
		{"/v1/label", wire.ContentTypeRowsF32, frame},
	}
	for _, tc := range cases {
		want := postRaw(t, reference, tc.path, tc.contentType, tc.body)
		// Four rounds so round-robin visits both replicas per case.
		for i := 0; i < 4; i++ {
			got := postRaw(t, g, tc.path, tc.contentType, tc.body)
			if got.Code != want.Code {
				t.Fatalf("%s (%s) round %d: status %d vs daemon %d: %s",
					tc.path, tc.contentType, i, got.Code, want.Code, got.Body.Bytes())
			}
			if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
				t.Fatalf("%s (%s) round %d: fleet answer diverged from single daemon\n gateway: %s\n daemon:  %s",
					tc.path, tc.contentType, i, got.Body.Bytes(), want.Body.Bytes())
			}
		}
	}
	// Both replicas must have carried traffic for the parity claim to
	// mean anything.
	for _, r := range g.replicas {
		if r.served.Load() == 0 {
			t.Fatalf("replica %s served no requests; round-robin is broken", r.url)
		}
	}
}

// TestGatewayNoReplicas: with every replica down, scoring answers the 503
// no_replicas refinement (not a generic 503) and /healthz fails closed.
func TestGatewayNoReplicas(t *testing.T) {
	t.Parallel()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from the start
	g := newGateway(t, Options{Replicas: []string{dead.URL}})

	w := postRaw(t, g, "/v1/score", wire.ContentTypeJSON, []byte(`{"rows":[[0,0,0]]}`))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", w.Code, w.Body.Bytes())
	}
	var env wire.Envelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("non-envelope refusal: %s", w.Body.Bytes())
	}
	if env.Code != wire.CodeNoReplicas {
		t.Fatalf("code = %q, want %q", env.Code, wire.CodeNoReplicas)
	}
	var h HealthResponse
	if code := getJSON(t, g, "/healthz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz status = %d, want 503", code)
	}
	if h.Status != "no_replicas" || h.ReplicasUp != 0 {
		t.Fatalf("healthz = %+v, want no_replicas with 0 up", h)
	}
}

// TestGatewayFailover: a replica that probes healthy but serves 500s costs
// one retry, not a failed request — the good replica answers and the
// retry counter records the detour. A 4xx, by contrast, is authoritative
// and relayed without burning retries.
func TestGatewayFailover(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	modelPath := saveTestNet(t, dir, "model.gob", []int{3, 8, 2}, 7)
	good := newReplica(t, server.Options{ModelPath: modelPath})
	var bad *httptest.Server
	bad = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			wire.WriteJSON(w, http.StatusOK, map[string]any{"status": "ok", "model_version": 1})
			return
		}
		wire.WriteError(w, http.StatusInternalServerError, "replica fault")
	}))
	defer bad.Close()
	g := newGateway(t, Options{Replicas: []string{bad.URL, good.URL}})

	body := []byte(`{"rows":[[0.5,0.5,0.5]]}`)
	for i := 0; i < 4; i++ {
		w := postRaw(t, g, "/v1/label", wire.ContentTypeJSON, body)
		if w.Code != http.StatusOK {
			t.Fatalf("round %d: status %d, want 200 via failover: %s", i, w.Code, w.Body.Bytes())
		}
	}
	if g.retries.Value() == 0 {
		t.Fatal("failover happened without incrementing the retry counter")
	}
	// A malformed body is the client's fault: the replica's 400 must come
	// back verbatim, not as a gateway 502.
	w := postRaw(t, g, "/v1/label", wire.ContentTypeJSON, []byte(`{"rows":`))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want the replica's 400: %s", w.Code, w.Body.Bytes())
	}
}

// TestGatewayBadGateway: when every healthy replica fails at the transport
// level, the refusal is the 502 bad_gateway taxonomy member.
func TestGatewayBadGateway(t *testing.T) {
	t.Parallel()
	hangup := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			wire.WriteJSON(w, http.StatusOK, map[string]any{"status": "ok"})
			return
		}
		conn, _, err := http.NewResponseController(w).Hijack()
		if err == nil {
			conn.Close() // mid-request hangup: transport error client-side
		}
	}))
	defer hangup.Close()
	g := newGateway(t, Options{Replicas: []string{hangup.URL}, Retries: -1})

	w := postRaw(t, g, "/v1/score", wire.ContentTypeJSON, []byte(`{"rows":[[0,0,0]]}`))
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502: %s", w.Code, w.Body.Bytes())
	}
	var env wire.Envelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Code != wire.CodeBadGateway {
		t.Fatalf("want a %q envelope, got %s", wire.CodeBadGateway, w.Body.Bytes())
	}
}

// TestGatewayModelRouting: model-addressed requests prefer replicas whose
// last probe advertised the model.
func TestGatewayModelRouting(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	modelPath := saveTestNet(t, dir, "model.gob", []int{3, 8, 2}, 7)
	plain := newReplica(t, server.Options{
		ModelPath:   modelPath,
		RegistryDir: filepath.Join(dir, "registry-empty"),
	})
	withReg := newReplica(t, server.Options{
		ModelPath:   modelPath,
		RegistryDir: filepath.Join(dir, "registry"),
	})
	ctx := context.Background()
	if _, err := fastClient(withReg.URL).RegisterModel(ctx, client.RegisterModelRequest{
		Name: "solo", Path: modelPath,
	}); err != nil {
		t.Fatal(err)
	}
	g := newGateway(t, Options{Replicas: []string{plain.URL, withReg.URL}})
	g.Probe() // pick up the advertisement

	var regReplica *replica
	for _, r := range g.replicas {
		if r.url == strings.TrimRight(withReg.URL, "/") {
			regReplica = r
		}
	}
	if regReplica == nil || !regReplica.hasModel("solo") {
		t.Fatalf("probe did not record the registry advertisement: %+v", g.replicas)
	}
	before := regReplica.served.Load()
	body := []byte(`{"model":"solo","rows":[[0.1,0.2,0.3]]}`)
	for i := 0; i < 6; i++ {
		w := postRaw(t, g, "/v1/score", wire.ContentTypeJSON, body)
		if w.Code != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", i, w.Code, w.Body.Bytes())
		}
	}
	if got := regReplica.served.Load() - before; got != 6 {
		t.Fatalf("advertising replica served %d of 6 model-addressed requests", got)
	}
	// An unknown model falls through to all healthy replicas, whose 404
	// unknown_model is authoritative and relayed.
	w := postRaw(t, g, "/v1/score", wire.ContentTypeJSON, []byte(`{"model":"ghost","rows":[[0,0,0]]}`))
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want the replica's 404: %s", w.Code, w.Body.Bytes())
	}
}

// TestGatewayStatsAggregation: /v1/stats sums replica counters fleet-wide
// and carries the per-replica breakdown plus the gateway's own counters.
func TestGatewayStatsAggregation(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	modelPath := saveTestNet(t, dir, "model.gob", []int{3, 8, 2}, 7)
	r1 := newReplica(t, server.Options{ModelPath: modelPath})
	r2 := newReplica(t, server.Options{ModelPath: modelPath})
	g := newGateway(t, Options{Replicas: []string{r1.URL, r2.URL}})

	body := []byte(`{"rows":[[0.5,0.5,0.5],[0.1,0.9,0.3]]}`)
	const calls = 6
	for i := 0; i < calls; i++ {
		if w := postRaw(t, g, "/v1/score", wire.ContentTypeJSON, body); w.Code != http.StatusOK {
			t.Fatalf("score %d: %d %s", i, w.Code, w.Body.Bytes())
		}
	}
	var st StatsResponse
	if code := getJSON(t, g, "/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Replicas != 2 || st.ReplicasUp != 2 || len(st.Fleet) != 2 {
		t.Fatalf("fleet shape wrong: %+v", st)
	}
	if st.GatewayRequests != calls {
		t.Fatalf("gateway_requests = %d, want %d", st.GatewayRequests, calls)
	}
	if st.Requests != calls || st.Rows != 2*calls {
		t.Fatalf("fleet sums requests=%d rows=%d, want %d and %d", st.Requests, st.Rows, calls, 2*calls)
	}
	var perReplica int64
	for _, row := range st.Fleet {
		if row.Stats == nil {
			t.Fatalf("replica %s missing stats: %q", row.URL, row.Error)
		}
		perReplica += row.Stats.Requests
		if row.Served == 0 {
			t.Fatalf("replica %s shows zero served; load balancing is broken", row.URL)
		}
	}
	if perReplica != st.Requests {
		t.Fatalf("breakdown sums to %d, header says %d", perReplica, st.Requests)
	}
}

// TestGatewayProbeFlapping drives a replica through down/up cycles and
// checks the consecutive-threshold state machine: FailThreshold failures
// eject, UpThreshold successes readmit, and nothing flaps on a single
// blip. Concurrent probes and traffic run throughout so -race patrols the
// fleet-state locking.
func TestGatewayProbeFlapping(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	modelPath := saveTestNet(t, dir, "model.gob", []int{3, 8, 2}, 7)
	srv, err := server.New(server.Options{ModelPath: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	var healthy atomic.Bool
	healthy.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			wire.WriteError(w, http.StatusServiceUnavailable, "induced outage")
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer flaky.Close()
	g := newGateway(t, Options{
		Replicas:      []string{flaky.URL},
		ProbeInterval: 5 * time.Millisecond, // background prober runs hot on purpose
		FailThreshold: 2,
		UpThreshold:   2,
	})
	rep := g.replicas[0]

	// Background traffic keeps the proxy path racing the prober.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := []byte(`{"rows":[[0.3,0.3,0.3]]}`)
			for {
				select {
				case <-stop:
					return
				default:
					postRaw(t, g, "/v1/label", wire.ContentTypeJSON, body)
				}
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if rep.isUp() == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("replica never became %s", what)
	}
	waitFor(true, "up initially")
	for cycle := 0; cycle < 3; cycle++ {
		healthy.Store(false)
		waitFor(false, "down")
		healthy.Store(true)
		waitFor(true, "up")
	}
}

// TestGatewayThresholds pins the consecutive-threshold state machine
// exactly (no background prober racing the assertions): one blip must not
// eject with FailThreshold=2, one good probe must not readmit with
// UpThreshold=2.
func TestGatewayThresholds(t *testing.T) {
	t.Parallel()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	g := newGateway(t, Options{
		Replicas:      []string{dead.URL},
		FailThreshold: 2,
		UpThreshold:   2,
	})
	rep := g.replicas[0]

	g.reportSuccess(rep, client.Health{Status: "ok"})
	if rep.isUp() {
		t.Fatal("a single good probe readmitted the replica despite UpThreshold=2")
	}
	g.reportSuccess(rep, client.Health{Status: "ok"})
	if !rep.isUp() {
		t.Fatal("two good probes did not readmit the replica")
	}
	g.reportFailure(rep, io.ErrUnexpectedEOF)
	if !rep.isUp() {
		t.Fatal("a single failure ejected the replica despite FailThreshold=2")
	}
	g.reportFailure(rep, io.ErrUnexpectedEOF)
	if rep.isUp() {
		t.Fatal("two consecutive failures did not eject the replica")
	}
	// Traffic successes reset the failure streak without readmitting.
	g.reportFailure(rep, io.ErrUnexpectedEOF)
	rep.noteTrafficOK()
	rep.mu.Lock()
	streak := rep.consecFail
	up := rep.up
	rep.mu.Unlock()
	if streak != 0 || up {
		t.Fatalf("noteTrafficOK: consecFail=%d up=%v, want 0 and still down", streak, up)
	}
}

// TestGatewayRejectsOversizeBody: the gateway's own 413 fires before any
// replica sees the bytes.
func TestGatewayRejectsOversizeBody(t *testing.T) {
	t.Parallel()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	g := newGateway(t, Options{Replicas: []string{dead.URL}, MaxBodyBytes: 64})
	w := postRaw(t, g, "/v1/score", wire.ContentTypeJSON, bytes.NewBufferString(strings.Repeat("x", 100)).Bytes())
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %s", w.Code, w.Body.Bytes())
	}
	if g.rejected.Value() != 1 {
		t.Fatalf("gateway_rejected = %d, want 1", g.rejected.Value())
	}
}
