package gateway

import (
	"net/http"
	"sort"
	"sync"
	"time"

	"malevade/internal/client"
	"malevade/internal/wire"
)

// ReplicaHealth is one fleet member's row in the gateway's /healthz
// payload — the prober's current view, not a live round-trip.
type ReplicaHealth struct {
	// URL is the replica's base URL.
	URL string `json:"url"`
	// Up reports whether the replica is in rotation.
	Up bool `json:"up"`
	// Generation is the replica's default-model generation as of its
	// last successful probe.
	Generation int64 `json:"generation,omitempty"`
	// Models lists the registry models the replica advertised at its
	// last successful probe.
	Models []string `json:"models,omitempty"`
	// ConsecutiveFailures is the current failure streak feeding the
	// down-transition threshold.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// LastError is the most recent probe or traffic failure, cleared by
	// a successful probe.
	LastError string `json:"last_error,omitempty"`
}

// HealthResponse is the gateway's GET /healthz payload. Status is "ok"
// with at least one replica up (HTTP 200), "no_replicas" with none (HTTP
// 503 so fleet-blind load-balancer checks fail closed), and "shutdown"
// after Close.
type HealthResponse struct {
	Status     string          `json:"status"`
	Replicas   int             `json:"replicas"`
	ReplicasUp int             `json:"replicas_up"`
	Fleet      []ReplicaHealth `json:"fleet"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		wire.WriteError(w, http.StatusMethodNotAllowed, "/healthz requires GET")
		return
	}
	resp := HealthResponse{Status: "ok", Replicas: len(g.replicas)}
	for _, rep := range g.replicas {
		rep.mu.Lock()
		row := ReplicaHealth{
			URL:                 rep.url,
			Up:                  rep.up,
			Generation:          rep.generation,
			ConsecutiveFailures: rep.consecFail,
			LastError:           rep.lastErr,
		}
		for name := range rep.models {
			row.Models = append(row.Models, name)
		}
		rep.mu.Unlock()
		sort.Strings(row.Models)
		if row.Up {
			resp.ReplicasUp++
		}
		resp.Fleet = append(resp.Fleet, row)
	}
	status := http.StatusOK
	if resp.ReplicasUp == 0 {
		resp.Status = "no_replicas"
		status = http.StatusServiceUnavailable
	}
	wire.WriteJSON(w, status, resp)
}

// ReplicaStats is one fleet member's row in the gateway's /v1/stats
// payload: the gateway's own routing counters plus — for replicas that
// answered the aggregation fan-out — the replica's full /v1/stats.
type ReplicaStats struct {
	// URL is the replica's base URL.
	URL string `json:"url"`
	// Up reports whether the replica is in rotation.
	Up bool `json:"up"`
	// Served counts scoring calls this replica answered through the
	// gateway; Failed counts probe and traffic failures charged to it.
	Served int64 `json:"served"`
	Failed int64 `json:"failed"`
	// Stats is the replica's own /v1/stats, absent when the replica did
	// not answer (Error says why).
	Stats *client.Stats `json:"stats,omitempty"`
	// Error is the aggregation fan-out failure for this replica, if any.
	Error string `json:"error,omitempty"`
}

// StatsResponse is the gateway's GET /v1/stats payload: fleet-wide sums
// over every replica that answered, the gateway's own counters, and the
// per-replica breakdown.
type StatsResponse struct {
	// UptimeSeconds is how long the gateway process has been serving.
	UptimeSeconds float64 `json:"uptime_seconds"`
	Replicas      int     `json:"replicas"`
	ReplicasUp    int     `json:"replicas_up"`
	// Requests through Campaigns sum the corresponding replica counters
	// across every replica that answered the fan-out. Replica counters
	// include direct (non-gateway) traffic, so sums can exceed the
	// gateway's own counts.
	Requests  int64 `json:"requests"`
	Rejected  int64 `json:"rejected"`
	Reloads   int64 `json:"reloads"`
	Batches   int64 `json:"batches"`
	Rows      int64 `json:"rows"`
	Campaigns int64 `json:"campaigns"`
	// ModelRequests sums per-model request counts across the fleet.
	ModelRequests map[string]int64 `json:"model_requests,omitempty"`
	// GatewayRequests counts scoring calls the gateway proxied;
	// GatewayRejected ones it refused itself (4xx before any replica);
	// GatewayRetries retry-on-next-replica occurrences;
	// GatewayCampaigns campaign submissions accepted by the gateway's
	// own engine.
	GatewayRequests  int64 `json:"gateway_requests"`
	GatewayRejected  int64 `json:"gateway_rejected"`
	GatewayRetries   int64 `json:"gateway_retries"`
	GatewayCampaigns int64 `json:"gateway_campaigns"`
	// Fleet is the per-replica breakdown.
	Fleet []ReplicaStats `json:"fleet"`
}

// handleStats fans GET /v1/stats out to every up replica concurrently,
// sums what answered, and reports fan-out failures per replica instead of
// failing the whole aggregation — a stats scrape must not flap with one
// slow replica.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		wire.WriteError(w, http.StatusMethodNotAllowed, "/v1/stats requires GET")
		return
	}
	resp := StatsResponse{
		UptimeSeconds:    time.Since(g.started).Seconds(),
		Replicas:         len(g.replicas),
		GatewayRequests:  g.requests.Value(),
		GatewayRejected:  g.rejected.Value(),
		GatewayRetries:   g.retries.Value(),
		GatewayCampaigns: g.campaigns.Submitted(),
		Fleet:            make([]ReplicaStats, len(g.replicas)),
	}
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		row := &resp.Fleet[i]
		row.URL = rep.url
		row.Up = rep.isUp()
		row.Served = rep.served.Load()
		row.Failed = rep.failed.Load()
		if !row.Up {
			row.Error = "not probed: replica is down"
			continue
		}
		resp.ReplicasUp++
		wg.Add(1)
		go func(rep *replica, row *ReplicaStats) {
			defer wg.Done()
			st, err := rep.c.Stats(r.Context())
			if err != nil {
				row.Error = err.Error()
				return
			}
			row.Stats = &st
		}(rep, row)
	}
	wg.Wait()
	for _, row := range resp.Fleet {
		if row.Stats == nil {
			continue
		}
		resp.Requests += row.Stats.Requests
		resp.Rejected += row.Stats.Rejected
		resp.Reloads += row.Stats.Reloads
		resp.Batches += row.Stats.Batches
		resp.Rows += row.Stats.Rows
		resp.Campaigns += row.Stats.Campaigns
		for name, n := range row.Stats.ModelRequests {
			if resp.ModelRequests == nil {
				resp.ModelRequests = make(map[string]int64)
			}
			resp.ModelRequests[name] += n
		}
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}
