package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"malevade/internal/campaign"
	"malevade/internal/tensor"
	"malevade/internal/wire"
)

// The gateway runs its own campaign engine and shards each campaign's
// population across the fleet: the engine already splits a population
// into batches and judges each batch with exactly one Target.LabelBatch
// call, so routing every LabelBatch to one healthy replica — consecutive
// batches round-robin across the fleet — fans the work out while keeping
// the paper's generation-pinning invariant intact per batch. The SDK does
// the heavy lifting inside each call: LabelVersion(Model) chunks large
// batches, pins one model generation across the chunks, and retries on
// wire.ErrMixedGenerations when a replica hot-reloads mid-batch. A batch
// whose replica dies mid-campaign is retried on the next healthy replica
// (then by the engine's own judge retries), so a killed replica costs
// retries, not dropped samples.

// fleetTarget routes one generation-pinned batch per LabelBatch call to
// one healthy replica, trying each healthy candidate at most once before
// reporting failure to the engine's retry loop. A non-empty model routes
// to advertising replicas (falling back to all healthy — advertisement
// may be stale) via the same pick the proxy path uses.
type fleetTarget struct {
	g     *Gateway
	model string
}

var _ campaign.Target = (*fleetTarget)(nil)

// LabelBatch implements campaign.Target over the fleet.
func (t *fleetTarget) LabelBatch(ctx context.Context, x *tensor.Matrix) ([]int, int64, error) {
	tried := make(map[*replica]bool)
	var lastErr error
	for {
		r := t.g.pick(t.model, tried)
		if r == nil {
			break
		}
		tried[r] = true
		labels, gen, err := t.label(ctx, r, x)
		if err == nil {
			r.noteTrafficOK()
			return labels, gen, nil
		}
		if ctx.Err() != nil {
			return nil, 0, context.Cause(ctx)
		}
		lastErr = err
		// A typed refusal below 500 means the replica is alive and
		// rejecting this batch (unknown model, bad shape); do not charge
		// it toward the down threshold. Anything else is the replica's
		// fault.
		var we *wire.Error
		if errors.As(err, &we) && we.Status < http.StatusInternalServerError {
			r.noteTrafficOK()
			continue
		}
		t.g.reportFailure(r, err)
	}
	if lastErr != nil {
		return nil, 0, lastErr
	}
	return nil, 0, &wire.Error{
		Status: http.StatusServiceUnavailable,
		Code:   wire.CodeNoReplicas,
		Msg:    "no healthy replicas",
	}
}

func (t *fleetTarget) label(ctx context.Context, r *replica, x *tensor.Matrix) ([]int, int64, error) {
	if t.model != "" {
		return r.c.LabelVersionModel(ctx, t.model, x)
	}
	return r.c.LabelVersion(ctx, x)
}

// namedTarget is the engine's NamedTarget factory. The engine calls it
// synchronously at submit time, so a model no probed replica advertises
// is refused as 404 unknown_model at the API layer, mirroring the
// single-daemon registry behaviour. Advertisement freshness is the probe
// interval; a just-registered model becomes submittable after the next
// probe round.
func (g *Gateway) namedTarget(model string) (campaign.Target, error) {
	for _, r := range g.replicas {
		if r.isUp() && r.hasModel(model) {
			return &fleetTarget{g: g, model: model}, nil
		}
	}
	return nil, &wire.Error{
		Status: http.StatusNotFound,
		Code:   wire.CodeUnknownModel,
		Msg:    "no healthy replica advertises model " + strconv.Quote(model),
	}
}

func (g *Gateway) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, g.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var spec campaign.Spec
	if err := dec.Decode(&spec); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			wire.WriteError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", g.opts.MaxBodyBytes)
			return
		}
		wire.WriteError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if dec.More() {
		wire.WriteError(w, http.StatusBadRequest, "trailing data after JSON body")
		return
	}
	snap, err := g.campaigns.Submit(spec)
	if err != nil {
		// Mirror the daemon's submit taxonomy, plus relay any typed
		// fleet refusal (the named-target factory's 404 unknown_model)
		// verbatim.
		status := http.StatusUnprocessableEntity
		code := wire.CodeInvalidSpec
		var we *wire.Error
		switch {
		case errors.As(err, &we):
			status, code = we.Status, we.Code
		case errors.Is(err, campaign.ErrQueueFull):
			status, code = http.StatusTooManyRequests, wire.CodeQueueFull
		case errors.Is(err, campaign.ErrClosed):
			status, code = http.StatusServiceUnavailable, wire.CodeUnavailable
		}
		wire.WriteErrorCode(w, status, code, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusAccepted, snap)
}

// CampaignList is the gateway's GET /v1/campaigns payload, mirroring the
// daemon's shape so SDK clients work unchanged against either tier.
type CampaignList struct {
	// Campaigns summarises every campaign the engine remembers.
	Campaigns []campaign.Snapshot `json:"campaigns"`
}

func (g *Gateway) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	wire.WriteJSON(w, http.StatusOK, CampaignList{Campaigns: g.campaigns.List()})
}

func (g *Gateway) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	offset := 0
	if raw := r.URL.Query().Get("offset"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			wire.WriteError(w, http.StatusBadRequest,
				"offset must be a non-negative integer, got %q", raw)
			return
		}
		offset = n
	}
	snap, ok := g.campaigns.Get(r.PathValue("id"), offset)
	if !ok {
		wire.WriteError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	wire.WriteJSON(w, http.StatusOK, snap)
}

func (g *Gateway) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	snap, ok := g.campaigns.Cancel(r.PathValue("id"))
	if !ok {
		wire.WriteError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	wire.WriteJSON(w, http.StatusAccepted, snap)
}
