package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"malevade/internal/server"
	"malevade/internal/wire"
)

// FuzzGatewayProxy throws arbitrary bodies and content types at the
// gateway's proxy tier with a real replica behind it. The front-tier
// contract under attack-shaped input: the gateway never panics and never
// originates a 5xx for malformed input — with a healthy fleet, whatever
// comes back is either the replica's own verdict (200) or the replica's
// own 4xx refusal, relayed verbatim. 502/503 would mean a hostile body
// crashed the replica path or confused the gateway into blaming the
// fleet; both are bugs this target exists to catch.
func FuzzGatewayProxy(f *testing.F) {
	f.Add([]byte(`{"rows": [[0.1, 0.2, 0.3]]}`), wire.ContentTypeJSON)
	f.Add([]byte(`{"model":"solo","rows":[[0,0,0]]}`), wire.ContentTypeJSON)
	f.Add([]byte(`{"rows": "not an array"}`), wire.ContentTypeJSON)
	f.Add([]byte(`not json at all`), wire.ContentTypeJSON)
	f.Add([]byte(``), wire.ContentTypeJSON)
	f.Add([]byte(`{"rows":[[1e999]]}`), "application/json; charset=utf-8")
	frame, err := wire.AppendFrame(nil, "", 1, 3, []float32{0.1, 0.2, 0.3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame, wire.ContentTypeRowsF32)
	f.Add(frame[:8], wire.ContentTypeRowsF32)
	f.Add([]byte("MVF1garbage"), wire.ContentTypeRowsF32)
	f.Add(frame, "completely/bogus")

	modelPath := saveTestNet(f, f.TempDir(), "fuzz.gob", []int{3, 8, 2}, 7)
	srv, err := server.New(server.Options{ModelPath: modelPath, MaxRows: 8, MaxBodyBytes: 1 << 12})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	replica := httptest.NewServer(srv)
	f.Cleanup(replica.Close)
	g, err := New(Options{
		Replicas:     []string{replica.URL},
		NewClient:    fastClient,
		MaxBodyBytes: 1 << 12,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(g.Close)

	f.Fuzz(func(t *testing.T, body []byte, contentType string) {
		for _, path := range []string{"/v1/score", "/v1/label"} {
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
			req.Header.Set("Content-Type", contentType)
			w := httptest.NewRecorder()
			g.ServeHTTP(w, req)
			if w.Code >= http.StatusInternalServerError {
				t.Fatalf("%s answered %d for body %q (%s): %s",
					path, w.Code, body, contentType, w.Body.Bytes())
			}
			if w.Code != http.StatusOK {
				var env wire.Envelope
				if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error == "" {
					t.Fatalf("%s refusal %d is not an error envelope: %q",
						path, w.Code, w.Body.Bytes())
				}
			}
		}
	})
}
