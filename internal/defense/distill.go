package defense

import (
	"fmt"
	"io"

	"malevade/internal/dataset"
	"malevade/internal/detector"
	"malevade/internal/nn"
)

// DistillConfig parameterizes defensive distillation (Papernot et al.,
// ref [23]; §II-C2 of the paper). The paper evaluates T=50.
type DistillConfig struct {
	// Temperature is the distillation temperature (default 50).
	Temperature float64
	// Arch, WidthScale, Epochs, BatchSize, LearningRate mirror
	// detector.TrainConfig; Epochs is required.
	Arch         detector.Arch
	WidthScale   float64
	Epochs       int
	BatchSize    int
	LearningRate float64
	Seed         uint64
	Log          io.Writer
}

func (c *DistillConfig) setDefaults() {
	if c.Temperature == 0 {
		c.Temperature = 50
	}
	if c.Arch == 0 {
		c.Arch = detector.ArchTarget
	}
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.001
	}
	if c.WidthScale == 0 {
		c.WidthScale = 1
	}
}

// Distill runs the two-model defensive-distillation procedure: a teacher is
// trained at temperature T on hard labels, then a student of the same
// architecture is trained at temperature T on the teacher's soft labels
// ("the additional knowledge in probabilities"). The deployed student runs
// at T=1, which is what makes its softmax gradients vanishingly small — the
// gradient-masking effect the defense relies on.
func Distill(train *dataset.Dataset, cfg DistillConfig) (*detector.DNN, error) {
	cfg.setDefaults()
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("defense: distillation Epochs must be set")
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("defense: distillation on empty training set")
	}
	dims := cfg.Arch.Dims(train.X.Cols, cfg.WidthScale)

	teacher, err := nn.NewMLP(nn.MLPConfig{Dims: dims, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("defense: build teacher: %w", err)
	}
	err = nn.Train(teacher, train.X, nn.OneHot(train.Y, 2), nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Optimizer: nn.NewAdam(cfg.LearningRate),
		Loss:      nn.NewSoftmaxCrossEntropy(cfg.Temperature),
		Seed:      cfg.Seed + 1,
		Log:       cfg.Log,
	})
	if err != nil {
		return nil, fmt.Errorf("defense: train teacher: %w", err)
	}

	// Soft labels: the teacher's probabilities at temperature T.
	soft := teacher.Probs(train.X, cfg.Temperature)

	student, err := nn.NewMLP(nn.MLPConfig{Dims: dims, Seed: cfg.Seed + 2})
	if err != nil {
		return nil, fmt.Errorf("defense: build student: %w", err)
	}
	err = nn.Train(student, train.X, soft, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Optimizer: nn.NewAdam(cfg.LearningRate),
		Loss:      nn.NewSoftmaxCrossEntropy(cfg.Temperature),
		Seed:      cfg.Seed + 3,
		Log:       cfg.Log,
	})
	if err != nil {
		return nil, fmt.Errorf("defense: train student: %w", err)
	}
	// Deployed at T=1 per the distillation recipe.
	return detector.NewDNN(student), nil
}
