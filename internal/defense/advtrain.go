// Package defense implements the paper's four defenses (§II-C): adversarial
// training (with the Table V dataset construction, including the
// deduplication sanity check), defensive distillation at temperature T,
// feature squeezing with an L1-distance detector, and PCA dimensionality
// reduction to k components.
//
// Defenses are evaluated the way the paper evaluates them (Table VI):
// against a fixed set of adversarial examples crafted by the grey-box attack
// (θ=0.1, γ=0.02) — not against per-defense adaptive attacks, which the
// conclusion explicitly leaves open.
package defense

import (
	"fmt"

	"malevade/internal/dataset"
	"malevade/internal/detector"
	"malevade/internal/tensor"
)

// AdvTrainingSets is the Table V construction: an augmented training set and
// the three-way test view.
type AdvTrainingSets struct {
	// Train is the augmented, deduplicated training set (clean + malware
	// + adversarial examples labelled malware).
	Train *dataset.Dataset
	// Duplicates is how many rows the sanity check removed.
	Duplicates int
}

// BuildAdvTrainingSet assembles the paper's adversarial-training corpus: the
// base training set plus adversarial examples labelled as malware, balanced
// by construction of the base set, with duplicate rows removed ("we did
// sanity check on the data to reduce the duplicated samples").
//
// advX rows are adversarial feature vectors (crafted from training malware);
// they inherit the malware label.
func BuildAdvTrainingSet(base *dataset.Dataset, advX *tensor.Matrix) (*AdvTrainingSets, error) {
	if advX.Rows > 0 && advX.Cols != base.X.Cols {
		return nil, fmt.Errorf("defense: adversarial width %d != base width %d", advX.Cols, base.X.Cols)
	}
	advDS := &dataset.Dataset{
		X:      advX.Clone(),
		Counts: tensor.New(advX.Rows, advX.Cols), // counts unknown for crafted rows
		Y:      make([]int, advX.Rows),
		Fams:   make([]string, advX.Rows),
	}
	for i := range advDS.Y {
		advDS.Y[i] = dataset.LabelMalware
		advDS.Fams[i] = "adversarial"
	}
	joined := base.Concat(advDS)
	deduped, removed := joined.Deduplicate()
	return &AdvTrainingSets{Train: deduped, Duplicates: removed}, nil
}

// AdversarialTraining retrains the detector architecture on the augmented
// set. cfg carries the detector training hyper-parameters.
func AdversarialTraining(sets *AdvTrainingSets, cfg detector.TrainConfig) (*detector.DNN, error) {
	d, err := detector.Train(sets.Train, cfg)
	if err != nil {
		return nil, fmt.Errorf("defense: adversarial training: %w", err)
	}
	return d, nil
}
