package defense

import (
	"fmt"
	"math"

	"malevade/internal/dataset"
	"malevade/internal/detector"
	"malevade/internal/tensor"
)

// PCA dimensionality reduction (Bhagoji et al., ref [27]; §II-C4): project
// the 491 features onto the top k principal components of the training
// distribution and train the classifier in the reduced space. The paper
// selects k=19. The defense's premise is that adversarial perturbations rely
// on low-variance directions that the projection discards.

// PCA holds a fitted principal-component projection.
type PCA struct {
	// Mean is the training mean subtracted before projection.
	Mean []float64
	// Components is k×d: row i is the i-th principal axis.
	Components *tensor.Matrix
	// Eigenvalues are the variances along the components, descending.
	Eigenvalues []float64
}

// FitPCA computes the top-k principal components of x's rows via Jacobi
// eigendecomposition of the covariance matrix. k must be in [1, cols].
func FitPCA(x *tensor.Matrix, k int) (*PCA, error) {
	if x.Rows < 2 {
		return nil, fmt.Errorf("defense: PCA needs >= 2 samples, got %d", x.Rows)
	}
	if k < 1 || k > x.Cols {
		return nil, fmt.Errorf("defense: PCA k=%d out of [1,%d]", k, x.Cols)
	}
	d := x.Cols
	mean := make([]float64, d)
	x.ColMeans(mean)

	// Covariance (d×d), single pass over centered rows.
	cov := tensor.New(d, d)
	centered := make([]float64, d)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j := range centered {
			centered[j] = row[j] - mean[j]
		}
		for a := 0; a < d; a++ {
			ca := centered[a]
			if ca == 0 {
				continue
			}
			covRow := cov.Row(a)
			for b, cb := range centered {
				covRow[b] += ca * cb
			}
		}
	}
	inv := 1 / float64(x.Rows-1)
	for i := range cov.Data {
		cov.Data[i] *= inv
	}

	vals, vecs := jacobiEigen(cov, 64)
	order := argsortDesc(vals)
	pca := &PCA{
		Mean:        mean,
		Components:  tensor.New(k, d),
		Eigenvalues: make([]float64, k),
	}
	for r := 0; r < k; r++ {
		col := order[r]
		pca.Eigenvalues[r] = vals[col]
		for c := 0; c < d; c++ {
			pca.Components.Set(r, c, vecs.At(c, col))
		}
	}
	return pca, nil
}

// Project maps rows of x into the k-dimensional component space.
func (p *PCA) Project(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != len(p.Mean) {
		panic(fmt.Sprintf("defense: PCA project width %d, want %d", x.Cols, len(p.Mean)))
	}
	k := p.Components.Rows
	out := tensor.New(x.Rows, k)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for r := 0; r < k; r++ {
			comp := p.Components.Row(r)
			sum := 0.0
			for j, v := range row {
				sum += (v - p.Mean[j]) * comp[j]
			}
			out.Set(i, r, sum)
		}
	}
	return out
}

// jacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi rotations.
// Returns eigenvalues and the eigenvector matrix (columns are vectors).
func jacobiEigen(a *tensor.Matrix, maxSweeps int) ([]float64, *tensor.Matrix) {
	n := a.Rows
	m := a.Clone()
	v := tensor.New(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app := m.At(p, p)
				aqq := m.At(q, q)
				phi := 0.5 * math.Atan2(2*apq, aqq-app)
				c := math.Cos(phi)
				s := math.Sin(phi)
				for i := 0; i < n; i++ {
					mip := m.At(i, p)
					miq := m.At(i, q)
					m.Set(i, p, c*mip-s*miq)
					m.Set(i, q, s*mip+c*miq)
				}
				for i := 0; i < n; i++ {
					mpi := m.At(p, i)
					mqi := m.At(q, i)
					m.Set(p, i, c*mpi-s*mqi)
					m.Set(q, i, s*mpi+c*mqi)
				}
				for i := 0; i < n; i++ {
					vip := v.At(i, p)
					viq := v.At(i, q)
					v.Set(i, p, c*vip-s*viq)
					v.Set(i, q, s*vip+c*viq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	return vals, v
}

func argsortDesc(vals []float64) []int {
	order := make([]int, len(vals))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && vals[order[j]] > vals[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// DimReduction is the fitted defense: PCA projection plus a classifier
// trained in the reduced space.
type DimReduction struct {
	PCA   *PCA
	Model *detector.DNN
}

var _ detector.Detector = (*DimReduction)(nil)

// DimReductionConfig parameterizes the defense. The paper selects K=19.
type DimReductionConfig struct {
	// K is the retained component count (default 19).
	K int
	// Train carries the classifier's hyper-parameters (Epochs required).
	Train detector.TrainConfig
}

// NewDimReduction fits PCA on the training features and trains the
// classifier on the projected data.
func NewDimReduction(train *dataset.Dataset, cfg DimReductionConfig) (*DimReduction, error) {
	if cfg.K == 0 {
		cfg.K = 19
	}
	pca, err := FitPCA(train.X, cfg.K)
	if err != nil {
		return nil, fmt.Errorf("defense: dim reduction: %w", err)
	}
	projected := &dataset.Dataset{
		X:      pca.Project(train.X),
		Counts: tensor.New(train.Len(), cfg.K),
		Y:      train.Y,
		Fams:   train.Fams,
	}
	model, err := detector.Train(projected, cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("defense: dim reduction classifier: %w", err)
	}
	return &DimReduction{PCA: pca, Model: model}, nil
}

// MalwareProb projects and scores.
func (d *DimReduction) MalwareProb(x *tensor.Matrix) []float64 {
	return d.Model.MalwareProb(d.PCA.Project(x))
}

// Predict projects and classifies.
func (d *DimReduction) Predict(x *tensor.Matrix) []int {
	return d.Model.Predict(d.PCA.Project(x))
}

// InDim returns the pre-projection feature width.
func (d *DimReduction) InDim() int { return len(d.PCA.Mean) }
