package defense

import (
	"strings"
	"testing"

	"malevade/internal/attack"
	"malevade/internal/detector"
	"malevade/internal/tensor"
)

func TestDefenseSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantErr string
	}{
		{"unknown kind", Spec{Kind: "firewall"}, "unknown kind"},
		{"advtrain without epochs", Spec{Kind: KindAdvTraining}, "requires epochs"},
		{"distill without epochs", Spec{Kind: KindDistill}, "requires epochs"},
		{"pca without epochs", Spec{Kind: KindPCA}, "requires epochs"},
		{"squeeze ok", Spec{Kind: KindSqueeze, Bits: 3, Threshold: 0.1}, ""},
		{"squeeze bits too deep", Spec{Kind: KindSqueeze, Bits: 40}, "out of [1,16]"},
		{"negative threshold", Spec{Kind: KindSqueeze, Threshold: -1}, "non-negative"},
		{"fpr at 1", Spec{Kind: KindSqueeze, TargetFPR: 1}, "below 1"},
		{"bad nested attack", Spec{Kind: KindAdvTraining, Epochs: 1,
			Attack: &attack.Config{Kind: "nope"}}, "unknown kind"},
		{"advtrain ok", Spec{Kind: KindAdvTraining, Epochs: 5}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestChainValidateOrdering(t *testing.T) {
	// Squeeze after a model-producing defense is fine; gradient-needing
	// defenses after a wrapping one are not.
	ok := Chain{
		{Kind: KindAdvTraining, Epochs: 2},
		{Kind: KindSqueeze, Threshold: 0.1},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	bad := Chain{
		{Kind: KindSqueeze, Threshold: 0.1},
		{Kind: KindAdvTraining, Epochs: 2},
	}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "plain DNN") {
		t.Fatalf("advtrain-after-squeeze accepted: %v", err)
	}
	afterPCA := Chain{
		{Kind: KindPCA, Epochs: 2},
		{Kind: KindSqueeze, Threshold: 0.1},
	}
	if err := afterPCA.Validate(); err == nil {
		t.Fatal("squeeze-after-pca accepted (pca's detector is no longer a plain DNN)")
	}
	if err := (Chain{}).Validate(); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestChainServability(t *testing.T) {
	servable := Chain{{Kind: KindSqueeze, Bits: 3, Threshold: 0.2}}
	if err := servable.ValidateServable(); err != nil {
		t.Fatalf("explicit-threshold squeeze rejected as servable: %v", err)
	}
	for _, c := range []Chain{
		{{Kind: KindSqueeze, Bits: 3}},       // calibrated → needs Clean
		{{Kind: KindAdvTraining, Epochs: 2}}, // needs Train
		{{Kind: KindDistill, Epochs: 2}},     // needs Train
		{{Kind: KindPCA, Epochs: 2, K: 4}},   // needs Train
	} {
		if err := c.ValidateServable(); err == nil {
			t.Fatalf("chain %v accepted as servable", c.Names())
		}
	}
}

// TestChainBuildMatchesHandBuilt: the declarative registry must construct
// the same defenses the experiments layer builds by hand — identical
// squeezing decisions for the calibrated path, identical flags for the
// explicit-threshold path.
func TestChainBuildMatchesHandBuilt(t *testing.T) {
	clean := defTestClean.X
	// Calibrated squeeze via the chain vs NewFeatureSqueezing directly.
	chain := Chain{{Kind: KindSqueeze, Bits: 3, TargetFPR: 0.05}}
	built, err := chain.Build(Env{Base: defBase, Clean: clean})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewFeatureSqueezing(defBase, BitDepthSqueezer{Bits: 3}, clean, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := built.(*FeatureSqueezing)
	if !ok {
		t.Fatalf("chain built %T, want *FeatureSqueezing", built)
	}
	if fs.Threshold != ref.Threshold {
		t.Fatalf("calibrated thresholds differ: chain %v, hand-built %v", fs.Threshold, ref.Threshold)
	}
	gotPred := built.Predict(defAdvX)
	wantPred := ref.Predict(defAdvX)
	for i := range wantPred {
		if gotPred[i] != wantPred[i] {
			t.Fatalf("prediction %d differs: chain %d, hand-built %d", i, gotPred[i], wantPred[i])
		}
	}
}

// TestChainBuildAdvTrainThenSqueeze: a two-stage chain hardens the model
// and wraps it; the squeezing wrapper must sit on the adversarially
// trained model, not the original base.
func TestChainBuildAdvTrainThenSqueeze(t *testing.T) {
	chain := Chain{
		{Kind: KindAdvTraining, Epochs: 10, WidthScale: 0.1, BatchSize: 64, Seed: 13,
			Attack: &attack.Config{Kind: attack.KindJSMA, Theta: 0.1, Gamma: 0.02}},
		{Kind: KindSqueeze, Bits: 3, Threshold: 0.3},
	}
	built, err := chain.Build(Env{Base: defBase, Train: defCorpus.Train})
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := built.(*FeatureSqueezing)
	if !ok {
		t.Fatalf("chain built %T, want *FeatureSqueezing", built)
	}
	if fs.Base == defBase {
		t.Fatal("squeeze wrapped the original base, not the adversarially trained model")
	}
	// The hardened detector must beat the base on the fixed advEx set
	// (the Table VI property the chain exists to deliver).
	before := detector.DetectionRate(defBase, defAdvX)
	after := detector.DetectionRate(built, defAdvX)
	if after <= before {
		t.Fatalf("defense chain did not raise advEx detection: %.3f -> %.3f", before, after)
	}
}

func TestChainBuildMissingMaterials(t *testing.T) {
	if _, err := (Chain{{Kind: KindAdvTraining, Epochs: 1}}).Build(Env{Base: defBase}); err == nil {
		t.Fatal("advtrain without Env.Train accepted")
	}
	if _, err := (Chain{{Kind: KindSqueeze}}).Build(Env{Base: defBase}); err == nil {
		t.Fatal("calibrated squeeze without Env.Clean accepted")
	}
	if _, err := (Chain{{Kind: KindSqueeze, Threshold: 0.1}}).Build(Env{}); err == nil {
		t.Fatal("nil base accepted")
	}
}

func TestSpecStrings(t *testing.T) {
	cases := map[string]string{
		Spec{Kind: KindSqueeze, Bits: 3, Threshold: 0.2}.String(): "squeeze(bits=3,thr=0.2)",
		Spec{Kind: KindSqueeze}.String():                          "squeeze(bits=3,fpr=0.05)",
		Spec{Kind: KindDistill}.String():                          "distill(T=50)",
		Spec{Kind: KindPCA}.String():                              "pca(k=19)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	names := Chain{{Kind: KindPCA}, {Kind: KindDistill}}.Names()
	if len(names) != 2 || names[0] != "pca(k=19)" {
		t.Errorf("Names() = %v", names)
	}
}

// TestSqueezeVerdictsMatchesSeparateCalls: the combined single-pass
// Verdicts must be bit-identical to MalwareProb + Predict called
// separately (the serving hot path relies on this equivalence).
func TestSqueezeVerdictsMatchesSeparateCalls(t *testing.T) {
	fs, err := NewFeatureSqueezing(defBase, BitDepthSqueezer{Bits: 3}, defTestClean.X, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []*tensor.Matrix{defTestMal.X, defAdvX} {
		probs, classes := fs.Verdicts(x)
		wantProbs := fs.MalwareProb(x)
		wantClasses := fs.Predict(x)
		for i := range wantProbs {
			if probs[i] != wantProbs[i] || classes[i] != wantClasses[i] {
				t.Fatalf("row %d: Verdicts (%v,%d) != separate (%v,%d)",
					i, probs[i], classes[i], wantProbs[i], wantClasses[i])
			}
		}
	}
}
