package defense

import (
	"fmt"
	"io"
	"math"

	"malevade/internal/attack"
	"malevade/internal/dataset"
	"malevade/internal/detector"
	"malevade/internal/tensor"
)

// Defense kinds accepted by Spec.Kind, in the order the paper's Table VI
// lists the defenses.
const (
	// KindAdvTraining is Table V/VI adversarial training: craft
	// adversarial examples on the current model, fold them into the
	// training set labelled malware, retrain.
	KindAdvTraining = "advtrain"
	// KindDistill is defensive distillation at temperature T.
	KindDistill = "distill"
	// KindSqueeze is feature squeezing: an input-transform wrapper with
	// an L1 prediction-distance adversarial detector.
	KindSqueeze = "squeeze"
	// KindPCA is PCA dimensionality reduction to K components with a
	// classifier retrained in the reduced space.
	KindPCA = "pca"
)

// DefenseKinds lists the defense kinds Spec accepts, in report order.
func DefenseKinds() []string {
	return []string{KindAdvTraining, KindDistill, KindSqueeze, KindPCA}
}

// Spec is a declarative defense description: the serializable form the
// facade, the HTTP daemon and drivers share, mirroring attack.Config on
// the attack side (kind + parameters, Validate before Build). Fields
// irrelevant to a kind are ignored.
type Spec struct {
	// Kind selects the defense: advtrain|distill|squeeze|pca.
	Kind string `json:"kind"`
	// Epochs/WidthScale/BatchSize/Seed carry retraining
	// hyper-parameters for the model-producing kinds (advtrain, distill,
	// pca). Epochs is required for those kinds.
	Epochs     int     `json:"epochs,omitempty"`
	WidthScale float64 `json:"width_scale,omitempty"`
	BatchSize  int     `json:"batch_size,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	// Temperature is the distillation temperature (default 50).
	Temperature float64 `json:"temperature,omitempty"`
	// Attack parameterizes the crafting attack adversarial training
	// hardens against (default: the paper's grey-box operating point,
	// jsma θ=0.1 γ=0.02).
	Attack *attack.Config `json:"attack,omitempty"`
	// Bits is the squeezing bit depth (default 3).
	Bits int `json:"bits,omitempty"`
	// Threshold is the squeezing detector's explicit L1 prediction
	// distance threshold. When 0, the threshold is calibrated from clean
	// samples at TargetFPR — which requires calibration data and makes
	// the spec non-servable.
	Threshold float64 `json:"threshold,omitempty"`
	// TargetFPR calibrates the squeezing threshold as the (1−TargetFPR)
	// quantile of clean-sample distances (default 0.05; ignored when
	// Threshold is set).
	TargetFPR float64 `json:"target_fpr,omitempty"`
	// K is the retained PCA component count (default 19, the paper's).
	K int `json:"k,omitempty"`
}

// Validate checks the spec without any model or data: the kind must be
// known, every numeric field finite and non-negative, and required
// per-kind parameters present. Build repeats this check, but API
// front-ends call Validate first so a bad spec is rejected at submit
// time.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindAdvTraining, KindDistill, KindSqueeze, KindPCA:
	default:
		return fmt.Errorf("defense: unknown kind %q (advtrain|distill|squeeze|pca)", s.Kind)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"width_scale", s.WidthScale}, {"temperature", s.Temperature},
		{"threshold", s.Threshold}, {"target_fpr", s.TargetFPR},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("defense: %s must be finite and non-negative, got %v", f.name, f.v)
		}
	}
	if s.Epochs < 0 || s.BatchSize < 0 || s.Bits < 0 || s.K < 0 {
		return fmt.Errorf("defense: epochs, batch_size, bits and k must be non-negative")
	}
	if s.TargetFPR >= 1 {
		return fmt.Errorf("defense: target_fpr must be below 1, got %v", s.TargetFPR)
	}
	if s.Attack != nil {
		if err := s.Attack.Validate(); err != nil {
			return err
		}
	}
	switch s.Kind {
	case KindAdvTraining, KindDistill, KindPCA:
		if s.Epochs == 0 {
			return fmt.Errorf("defense: %s requires epochs", s.Kind)
		}
	case KindSqueeze:
		if s.Bits > 16 {
			return fmt.Errorf("defense: squeeze bits %d out of [1,16]", s.Bits)
		}
	}
	return nil
}

// NeedsTraining reports whether building this spec consumes training or
// calibration data (Env.Train / Env.Clean). Specs that need none — today,
// squeezing with an explicit threshold — are servable: the HTTP daemon
// can wrap them around every loaded model generation with nothing but the
// model file.
func (s Spec) NeedsTraining() bool {
	switch s.Kind {
	case KindSqueeze:
		return s.Threshold == 0 // calibrated from clean samples
	default:
		return true
	}
}

// String renders the spec for logs, health endpoints and reports.
func (s Spec) String() string {
	switch s.Kind {
	case KindAdvTraining:
		atk := s.craftAttack()
		return fmt.Sprintf("advtrain(%s)", atk.String())
	case KindDistill:
		t := s.Temperature
		if t == 0 {
			t = 50
		}
		return fmt.Sprintf("distill(T=%.4g)", t)
	case KindSqueeze:
		if s.Threshold > 0 {
			return fmt.Sprintf("squeeze(bits=%d,thr=%.4g)", s.bits(), s.Threshold)
		}
		return fmt.Sprintf("squeeze(bits=%d,fpr=%.4g)", s.bits(), s.targetFPR())
	case KindPCA:
		k := s.K
		if k == 0 {
			k = 19
		}
		return fmt.Sprintf("pca(k=%d)", k)
	default:
		return fmt.Sprintf("defense(%q)", s.Kind)
	}
}

func (s Spec) bits() int {
	if s.Bits == 0 {
		return 3
	}
	return s.Bits
}

func (s Spec) targetFPR() float64 {
	if s.TargetFPR == 0 {
		return 0.05
	}
	return s.TargetFPR
}

func (s Spec) craftAttack() attack.Config {
	if s.Attack != nil {
		return *s.Attack
	}
	// The paper's Table VI evaluation point: grey-box JSMA at θ=0.1,
	// γ=0.02.
	return attack.Config{Kind: attack.KindJSMA, Theta: 0.1, Gamma: 0.02}
}

func (s Spec) trainConfig() detector.TrainConfig {
	return detector.TrainConfig{
		Arch:       detector.ArchTarget,
		WidthScale: s.WidthScale,
		Epochs:     s.Epochs,
		BatchSize:  s.BatchSize,
		Seed:       s.Seed,
	}
}

// Env supplies the materials a chain build consumes: the undefended base
// model and, for data-consuming defenses, the training split and clean
// calibration rows.
type Env struct {
	// Base is the undefended detector the chain hardens.
	Base *detector.DNN
	// Train is the training split model-producing defenses retrain on.
	Train *dataset.Dataset
	// Clean holds clean feature rows for squeezing calibration
	// (typically the validation split's clean half).
	Clean *tensor.Matrix
	// Log, when non-nil, receives training progress lines.
	Log io.Writer
}

// Chain is an ordered defense pipeline: model-producing defenses
// (advtrain, distill, pca) replace the current model, wrapping defenses
// (squeeze) wrap it. Order matters — squeeze after advtrain hardens the
// adversarially-trained model; the reverse is invalid because advtrain
// needs gradient access to a plain DNN.
type Chain []Spec

// Validate checks every spec and the chain's ordering: once a spec
// produces a non-DNN detector (pca's projected classifier, squeeze's
// wrapper), no later spec may require gradient access to a plain DNN.
func (c Chain) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("defense: empty chain")
	}
	dnn := true // the chain starts from a plain DNN base
	for i, s := range c {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("defense: chain[%d]: %w", i, err)
		}
		switch s.Kind {
		case KindAdvTraining, KindSqueeze:
			if !dnn {
				return fmt.Errorf("defense: chain[%d]: %s needs a plain DNN but an earlier defense wrapped it", i, s.Kind)
			}
		}
		if s.Kind == KindPCA || s.Kind == KindSqueeze {
			dnn = false
		}
	}
	return nil
}

// ValidateServable additionally requires every spec to be buildable with
// nothing but a loaded model — the constraint the HTTP daemon enforces on
// ServerOptions.Defenses. Data-consuming defenses are built offline with
// Build, saved via the model file, and served as an ordinary model.
func (c Chain) ValidateServable() error {
	if err := c.Validate(); err != nil {
		return err
	}
	for i, s := range c {
		if s.NeedsTraining() {
			return fmt.Errorf("defense: chain[%d]: %s needs training data; build it offline (ApplyDefenses) and serve the hardened model, or give squeeze an explicit threshold", i, s)
		}
	}
	return nil
}

// Build constructs the hardened detector by applying the chain in order
// to env.Base. Model-producing specs consume env.Train; calibrated
// squeezing consumes env.Clean.
func (c Chain) Build(env Env) (detector.Detector, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if env.Base == nil {
		return nil, fmt.Errorf("defense: Env.Base is required")
	}
	var cur detector.Detector = env.Base
	dnn := env.Base
	for i, s := range c {
		next, nextDNN, err := s.build(env, cur, dnn)
		if err != nil {
			return nil, fmt.Errorf("defense: chain[%d] %s: %w", i, s, err)
		}
		cur, dnn = next, nextDNN
	}
	return cur, nil
}

// Wrap applies a servable chain around an already-built detector — the
// HTTP daemon's per-generation path, where the base is the live scoring
// engine's model and no training data exists.
func (c Chain) Wrap(base *detector.DNN) (detector.Detector, error) {
	if err := c.ValidateServable(); err != nil {
		return nil, err
	}
	var cur detector.Detector = base
	dnn := base
	for i, s := range c {
		next, nextDNN, err := s.build(Env{Base: base}, cur, dnn)
		if err != nil {
			return nil, fmt.Errorf("defense: chain[%d] %s: %w", i, s, err)
		}
		cur, dnn = next, nextDNN
	}
	return cur, nil
}

// build applies one spec. cur is the chain's current detector; dnn is its
// plain-DNN form when one still exists (nil after a wrapping defense).
func (s Spec) build(env Env, cur detector.Detector, dnn *detector.DNN) (detector.Detector, *detector.DNN, error) {
	switch s.Kind {
	case KindAdvTraining:
		if env.Train == nil {
			return nil, nil, fmt.Errorf("advtrain needs Env.Train")
		}
		if dnn == nil {
			return nil, nil, fmt.Errorf("advtrain needs a plain DNN to craft on")
		}
		atk, err := s.craftAttack().Build(dnn.Net, nil)
		if err != nil {
			return nil, nil, err
		}
		mal := env.Train.FilterLabel(dataset.LabelMalware)
		advX := attack.AdvMatrix(atk.Run(mal.X))
		sets, err := BuildAdvTrainingSet(env.Train, advX)
		if err != nil {
			return nil, nil, err
		}
		cfg := s.trainConfig()
		cfg.Log = env.Log
		hardened, err := AdversarialTraining(sets, cfg)
		if err != nil {
			return nil, nil, err
		}
		return hardened, hardened, nil
	case KindDistill:
		if env.Train == nil {
			return nil, nil, fmt.Errorf("distill needs Env.Train")
		}
		student, err := Distill(env.Train, DistillConfig{
			Temperature: s.Temperature,
			WidthScale:  s.WidthScale,
			Epochs:      s.Epochs,
			BatchSize:   s.BatchSize,
			Seed:        s.Seed,
			Log:         env.Log,
		})
		if err != nil {
			return nil, nil, err
		}
		return student, student, nil
	case KindPCA:
		if env.Train == nil {
			return nil, nil, fmt.Errorf("pca needs Env.Train")
		}
		k := s.K
		if k == 0 {
			k = 19
		}
		cfg := s.trainConfig()
		cfg.Log = env.Log
		dr, err := NewDimReduction(env.Train, DimReductionConfig{K: k, Train: cfg})
		if err != nil {
			return nil, nil, err
		}
		return dr, nil, nil
	case KindSqueeze:
		if dnn == nil {
			return nil, nil, fmt.Errorf("squeeze needs a plain DNN to compare predictions on")
		}
		sq := BitDepthSqueezer{Bits: s.bits()}
		if s.Threshold > 0 {
			return &FeatureSqueezing{Base: dnn, Squeezer: sq, Threshold: s.Threshold}, nil, nil
		}
		if env.Clean == nil {
			return nil, nil, fmt.Errorf("calibrated squeeze needs Env.Clean (or set an explicit threshold)")
		}
		fs, err := NewFeatureSqueezing(dnn, sq, env.Clean, s.targetFPR())
		if err != nil {
			return nil, nil, err
		}
		return fs, nil, nil
	}
	return nil, nil, fmt.Errorf("unknown kind %q", s.Kind)
}

// Names renders the chain's spec strings in order, for health endpoints
// and reports.
func (c Chain) Names() []string {
	out := make([]string, len(c))
	for i, s := range c {
		out[i] = s.String()
	}
	return out
}
