package defense

import (
	"fmt"
	"math"
	"sort"

	"malevade/internal/detector"
	"malevade/internal/tensor"
)

// Feature squeezing (Xu et al., ref [25]; §II-C3): squeeze the input's
// degrees of freedom, compare the model's prediction on the original and
// squeezed inputs with the L1 norm, and flag the sample as adversarial when
// the distance exceeds a threshold. The assumption — which the paper's
// Table VI shows only partially holds for this feature space — is that
// squeezing perturbs adversarial predictions much more than legitimate ones.

// Squeezer reduces input degrees of freedom.
type Squeezer interface {
	// Squeeze returns the squeezed copy of x (x is not modified).
	Squeeze(x []float64) []float64
	// Name identifies the squeezer.
	Name() string
}

// BitDepthSqueezer quantizes features to 2^Bits levels, the canonical
// squeezer for [0,1]-normalized inputs.
type BitDepthSqueezer struct {
	// Bits is the retained bit depth (1..16).
	Bits int
}

var _ Squeezer = BitDepthSqueezer{}

// Name implements Squeezer.
func (s BitDepthSqueezer) Name() string { return fmt.Sprintf("bitdepth-%d", s.Bits) }

// Squeeze rounds each value to the nearest of 2^Bits levels.
func (s BitDepthSqueezer) Squeeze(x []float64) []float64 {
	if s.Bits < 1 || s.Bits > 16 {
		panic(fmt.Sprintf("defense: bit depth %d out of [1,16]", s.Bits))
	}
	levels := math.Pow(2, float64(s.Bits)) - 1
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Round(v*levels) / levels
	}
	return out
}

// FeatureSqueezing is the combined detector: a sample is declared
// adversarial when ‖F(x) − F(squeeze(x))‖₁ exceeds Threshold.
type FeatureSqueezing struct {
	// Base is the undefended model.
	Base *detector.DNN
	// Squeezer reduces the input (default: 3-bit depth).
	Squeezer Squeezer
	// Threshold on the L1 prediction distance.
	Threshold float64
}

// NewFeatureSqueezing builds the defense with a calibrated threshold: the
// quantile of clean-sample L1 distances at (1 − targetFPR), the standard
// calibration from the feature-squeezing paper.
func NewFeatureSqueezing(base *detector.DNN, sq Squeezer, clean *tensor.Matrix, targetFPR float64) (*FeatureSqueezing, error) {
	if sq == nil {
		sq = BitDepthSqueezer{Bits: 3}
	}
	if targetFPR <= 0 || targetFPR >= 1 {
		return nil, fmt.Errorf("defense: squeezing target FPR %v out of (0,1)", targetFPR)
	}
	if clean.Rows == 0 {
		return nil, fmt.Errorf("defense: squeezing calibration needs clean samples")
	}
	fs := &FeatureSqueezing{Base: base, Squeezer: sq}
	dists := fs.Distances(clean)
	sort.Float64s(dists)
	idx := int(float64(len(dists)) * (1 - targetFPR))
	if idx >= len(dists) {
		idx = len(dists) - 1
	}
	fs.Threshold = dists[idx]
	return fs, nil
}

// Distances returns the per-row L1 prediction distances that drive the
// adversarial decision.
func (f *FeatureSqueezing) Distances(x *tensor.Matrix) []float64 {
	origProbs := f.Base.Net.Probs(x, 1).Clone()
	squeezed := tensor.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(squeezed.Row(i), f.Squeezer.Squeeze(x.Row(i)))
	}
	sqProbs := f.Base.Net.Probs(squeezed, 1)
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = tensor.L1Distance(origProbs.Row(i), sqProbs.Row(i))
	}
	return out
}

// IsAdversarial flags each row whose prediction distance exceeds the
// threshold.
func (f *FeatureSqueezing) IsAdversarial(x *tensor.Matrix) []bool {
	dists := f.Distances(x)
	out := make([]bool, len(dists))
	for i, d := range dists {
		out[i] = d > f.Threshold
	}
	return out
}

// Predict implements a defended decision: a row is reported malware when
// the squeezing detector flags it OR the base model predicts malware on the
// squeezed input. (The squeezed input is used for the class decision, as in
// the squeezing paper's joint deployment.)
func (f *FeatureSqueezing) Predict(x *tensor.Matrix) []int {
	flags := f.IsAdversarial(x)
	squeezed := tensor.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(squeezed.Row(i), f.Squeezer.Squeeze(x.Row(i)))
	}
	pred := f.Base.Predict(squeezed)
	for i := range pred {
		if flags[i] {
			pred[i] = 1 // flagged ⇒ treated as malicious
		}
	}
	return pred
}

// Verdicts returns MalwareProb and Predict for every row in one pass
// over the squeeze pipeline: the adversarial flags and the squeezed-input
// inference are computed once and both outputs derived from them,
// bit-identical to calling MalwareProb and Predict separately. The
// serving hot path uses this to avoid doubling the defended daemon's
// forward passes.
func (f *FeatureSqueezing) Verdicts(x *tensor.Matrix) ([]float64, []int) {
	flags := f.IsAdversarial(x)
	squeezed := tensor.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(squeezed.Row(i), f.Squeezer.Squeeze(x.Row(i)))
	}
	// One probability pass yields both outputs: softmax is monotone in
	// the logits, so the probability argmax IS Predict's class. The
	// pooled Probs matrix is consumed before any further inference.
	t := f.Base.Temperature
	if t <= 0 {
		t = 1
	}
	pm := f.Base.Net.Probs(squeezed, t)
	probs := make([]float64, x.Rows)
	classes := make([]int, x.Rows)
	for i := range probs {
		probs[i] = pm.At(i, 1)
		classes[i] = pm.RowArgmax(i)
		if flags[i] {
			probs[i] = 1
			classes[i] = 1
		}
	}
	return probs, classes
}

// MalwareProb reports the base model's probability on the squeezed input,
// saturated to 1 for flagged rows.
func (f *FeatureSqueezing) MalwareProb(x *tensor.Matrix) []float64 {
	flags := f.IsAdversarial(x)
	squeezed := tensor.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(squeezed.Row(i), f.Squeezer.Squeeze(x.Row(i)))
	}
	probs := f.Base.MalwareProb(squeezed)
	for i := range probs {
		if flags[i] {
			probs[i] = 1
		}
	}
	return probs
}

// InDim returns the expected feature width.
func (f *FeatureSqueezing) InDim() int { return f.Base.InDim() }

var _ detector.Detector = (*FeatureSqueezing)(nil)
