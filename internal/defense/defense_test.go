package defense

import (
	"math"
	"testing"

	"malevade/internal/attack"
	"malevade/internal/dataset"
	"malevade/internal/detector"
	"malevade/internal/evaluation"
	"malevade/internal/tensor"
)

// Shared fixtures, built once per test binary: a small corpus, an undefended
// model, and a fixed adversarial-example set (the paper evaluates all
// defenses against grey-box advEx at θ=0.1, γ=0.02; the white-box set here
// plays the same role for unit tests — the grey-box pipeline is exercised in
// the experiments package).
var (
	defCorpus = func() *dataset.Corpus {
		c, err := dataset.Generate(dataset.TableIConfig(13).Scaled(120))
		if err != nil {
			panic(err)
		}
		return c
	}()
	defBase = func() *detector.DNN {
		d, err := detector.Train(defCorpus.Train, detector.TrainConfig{
			Arch:       detector.ArchTarget,
			WidthScale: 0.1,
			Epochs:     15,
			BatchSize:  64,
			Seed:       11,
		})
		if err != nil {
			panic(err)
		}
		return d
	}()
	defTestMal   = defCorpus.Test.FilterLabel(dataset.LabelMalware)
	defTestClean = defCorpus.Test.FilterLabel(dataset.LabelClean)
	defAdvX      = func() *tensor.Matrix {
		j := &attack.JSMA{Model: defBase.Net, Theta: 0.1, Gamma: 0.02}
		return attack.AdvMatrix(j.Run(defTestMal.X))
	}()
)

func advDataset(x *tensor.Matrix) *dataset.Dataset {
	d := &dataset.Dataset{
		X:      x,
		Counts: tensor.New(x.Rows, x.Cols),
		Y:      make([]int, x.Rows),
		Fams:   make([]string, x.Rows),
	}
	for i := range d.Y {
		d.Y[i] = dataset.LabelMalware
		d.Fams[i] = "adv"
	}
	return d
}

func TestBuildAdvTrainingSet(t *testing.T) {
	trainMal := defCorpus.Train.FilterLabel(dataset.LabelMalware)
	j := &attack.JSMA{Model: defBase.Net, Theta: 0.1, Gamma: 0.02}
	advX := attack.AdvMatrix(j.Run(trainMal.X))
	sets, err := BuildAdvTrainingSet(defCorpus.Train, advX)
	if err != nil {
		t.Fatal(err)
	}
	wantMax := defCorpus.Train.Len() + advX.Rows
	if sets.Train.Len()+sets.Duplicates != wantMax {
		t.Fatalf("size %d + dups %d != %d", sets.Train.Len(), sets.Duplicates, wantMax)
	}
	// Every adversarial row must carry the malware label.
	advLabelled := 0
	for i, f := range sets.Train.Fams {
		if f == "adversarial" {
			advLabelled++
			if sets.Train.Y[i] != dataset.LabelMalware {
				t.Fatal("adversarial row not labelled malware")
			}
		}
	}
	if advLabelled == 0 {
		t.Fatal("no adversarial rows present")
	}
}

func TestBuildAdvTrainingSetWidthMismatch(t *testing.T) {
	if _, err := BuildAdvTrainingSet(defCorpus.Train, tensor.New(3, 7)); err == nil {
		t.Fatal("expected width error")
	}
}

// TestAdversarialTrainingRestoresDetection is the paper's Table VI headline:
// adversarial training lifts advEx detection dramatically (0.304 → 0.931)
// without sacrificing clean accuracy.
func TestAdversarialTrainingRestoresDetection(t *testing.T) {
	before := detector.DetectionRate(defBase, defAdvX)

	trainMal := defCorpus.Train.FilterLabel(dataset.LabelMalware)
	j := &attack.JSMA{Model: defBase.Net, Theta: 0.1, Gamma: 0.02}
	advTrain := attack.AdvMatrix(j.Run(trainMal.X))
	sets, err := BuildAdvTrainingSet(defCorpus.Train, advTrain)
	if err != nil {
		t.Fatal(err)
	}
	defended, err := AdversarialTraining(sets, detector.TrainConfig{
		Arch:       detector.ArchTarget,
		WidthScale: 0.1,
		Epochs:     15,
		BatchSize:  64,
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := detector.DetectionRate(defended, defAdvX)
	if after <= before || after < 0.85 {
		t.Fatalf("adversarial training detection %v -> %v, want recovery above 0.85", before, after)
	}
	cm := evaluation.Evaluate(defended, defCorpus.Test)
	if cm.TNR() < 0.75 {
		t.Fatalf("adversarial training destroyed TNR: %v", cm)
	}
}

func TestDistillValidation(t *testing.T) {
	if _, err := Distill(defCorpus.Train, DistillConfig{}); err == nil {
		t.Fatal("expected epochs error")
	}
	empty := defCorpus.Train.Subset(nil)
	if _, err := Distill(empty, DistillConfig{Epochs: 1}); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestDistillKeepsReasonableAccuracyAndMasksGradients(t *testing.T) {
	// Distillation needs more epochs than plain training: gradient
	// masking only sets in once the student's logits grow ~T× larger
	// than an ordinary model's (see the probe numbers in EXPERIMENTS.md).
	student, err := Distill(defCorpus.Train, DistillConfig{
		Temperature: 50,
		WidthScale:  0.1,
		Epochs:      40,
		BatchSize:   64,
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := detector.Accuracy(student, defCorpus.Train)
	if acc < 0.7 {
		t.Fatalf("distilled train accuracy %.3f", acc)
	}
	// Gradient masking: the student's input gradients at T=1 should be
	// far smaller than the base model's.
	sub := tensor.New(10, defTestMal.X.Cols)
	copy(sub.Data, defTestMal.X.Data[:10*defTestMal.X.Cols])
	gBase := defBase.Net.ClassGradient(sub, 0, 1).MaxAbs()
	gStud := student.Net.ClassGradient(sub, 0, 1).MaxAbs()
	if gStud > gBase*0.01 {
		t.Fatalf("distillation did not mask gradients: base %v student %v", gBase, gStud)
	}
}

func TestBitDepthSqueezer(t *testing.T) {
	sq := BitDepthSqueezer{Bits: 1}
	got := sq.Squeeze([]float64{0.2, 0.6, 0.9})
	want := []float64{0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("1-bit squeeze = %v, want %v", got, want)
		}
	}
	sq3 := BitDepthSqueezer{Bits: 3}
	v := sq3.Squeeze([]float64{0.5})[0]
	if math.Abs(v-0.5) > 1.0/7+1e-9 {
		t.Fatalf("3-bit squeeze drifted: %v", v)
	}
	if sq3.Name() != "bitdepth-3" {
		t.Fatal(sq3.Name())
	}
}

func TestBitDepthSqueezerDoesNotMutate(t *testing.T) {
	in := []float64{0.123, 0.456}
	orig := append([]float64(nil), in...)
	BitDepthSqueezer{Bits: 2}.Squeeze(in)
	for i := range in {
		if in[i] != orig[i] {
			t.Fatal("squeezer mutated input")
		}
	}
}

func TestFeatureSqueezingCalibration(t *testing.T) {
	fs, err := NewFeatureSqueezing(defBase, nil, defTestClean.X, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	flags := fs.IsAdversarial(defTestClean.X)
	flagged := 0
	for _, f := range flags {
		if f {
			flagged++
		}
	}
	fpr := float64(flagged) / float64(len(flags))
	if fpr > 0.12 {
		t.Fatalf("clean flag rate %.3f, calibrated for 0.05", fpr)
	}
}

func TestFeatureSqueezingValidation(t *testing.T) {
	if _, err := NewFeatureSqueezing(defBase, nil, defTestClean.X, 0); err == nil {
		t.Fatal("expected FPR error")
	}
	if _, err := NewFeatureSqueezing(defBase, nil, tensor.New(0, 491), 0.05); err == nil {
		t.Fatal("expected empty-calibration error")
	}
}

func TestFeatureSqueezingFlagsAdversarials(t *testing.T) {
	fs, err := NewFeatureSqueezing(defBase, nil, defTestClean.X, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	pred := fs.Predict(defAdvX)
	detected := 0
	for _, p := range pred {
		if p == dataset.LabelMalware {
			detected++
		}
	}
	rate := float64(detected) / float64(len(pred))
	base := detector.DetectionRate(defBase, defAdvX)
	if rate < base {
		t.Fatalf("squeezing detection %.3f below undefended %.3f", rate, base)
	}
}

func TestFeatureSqueezingDetectorInterface(t *testing.T) {
	fs, err := NewFeatureSqueezing(defBase, nil, defTestClean.X, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fs.InDim() != 491 {
		t.Fatal("InDim")
	}
	probs := fs.MalwareProb(defAdvX)
	pred := fs.Predict(defAdvX)
	for i := range pred {
		if probs[i] < 0 || probs[i] > 1 {
			t.Fatalf("prob %v", probs[i])
		}
		if pred[i] == dataset.LabelMalware && probs[i] <= 0.5 && probs[i] != 1 {
			// flagged rows carry prob 1; model-decided rows must agree
			t.Fatalf("row %d: pred %d prob %v", i, pred[i], probs[i])
		}
	}
}

func TestFitPCAReconstructsStructure(t *testing.T) {
	// Synthetic data with one dominant direction.
	n, d := 200, 8
	x := tensor.New(n, d)
	for i := 0; i < n; i++ {
		t1 := float64(i%17) - 8
		for j := 0; j < d; j++ {
			x.Set(i, j, t1*float64(j+1)*0.1)
		}
	}
	pca, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pca.Eigenvalues[0] < pca.Eigenvalues[1] {
		t.Fatal("eigenvalues not descending")
	}
	// The dominant component must explain nearly all variance.
	if pca.Eigenvalues[0] < 100*pca.Eigenvalues[1] {
		t.Fatalf("rank-1 structure not found: %v", pca.Eigenvalues)
	}
	// Component must be unit norm.
	norm := tensor.L2Norm(pca.Components.Row(0))
	if math.Abs(norm-1) > 1e-6 {
		t.Fatalf("component norm %v", norm)
	}
}

func TestFitPCAValidation(t *testing.T) {
	x := tensor.New(1, 4)
	if _, err := FitPCA(x, 2); err == nil {
		t.Fatal("expected sample-count error")
	}
	x2 := tensor.New(5, 4)
	if _, err := FitPCA(x2, 0); err == nil {
		t.Fatal("expected k error")
	}
	if _, err := FitPCA(x2, 5); err == nil {
		t.Fatal("expected k>d error")
	}
}

func TestPCAProjectionPreservesPairwiseStructure(t *testing.T) {
	// Projection onto all components is an isometry up to rotation:
	// distances are preserved when k = d.
	n, d := 50, 6
	x := tensor.New(n, d)
	seedFill(x)
	pca, err := FitPCA(x, d)
	if err != nil {
		t.Fatal(err)
	}
	proj := pca.Project(x)
	for trial := 0; trial < 20; trial++ {
		i, j := trial%n, (trial*7+1)%n
		orig := tensor.L2Distance(x.Row(i), x.Row(j))
		got := tensor.L2Distance(proj.Row(i), proj.Row(j))
		if math.Abs(orig-got) > 1e-6*(1+orig) {
			t.Fatalf("distance not preserved: %v vs %v", orig, got)
		}
	}
}

func seedFill(m *tensor.Matrix) {
	state := uint64(12345)
	for i := range m.Data {
		state = state*6364136223846793005 + 1442695040888963407
		m.Data[i] = float64(state>>40) / float64(1<<24)
	}
}

func TestDimReductionDefense(t *testing.T) {
	dr, err := NewDimReduction(defCorpus.Train, DimReductionConfig{
		K: 19,
		Train: detector.TrainConfig{
			Arch:       detector.ArchTarget,
			WidthScale: 0.1,
			Epochs:     15,
			BatchSize:  64,
			Seed:       19,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dr.InDim() != 491 {
		t.Fatalf("InDim %d", dr.InDim())
	}
	cm := evaluation.Evaluate(dr, defCorpus.Test)
	if cm.TPR() < 0.6 {
		t.Fatalf("dim-reduction TPR %.3f too low", cm.TPR())
	}
	// The defense's premise: detection of the fixed advEx set improves
	// over the undefended model.
	base := detector.DetectionRate(defBase, defAdvX)
	defended := detector.DetectionRate(dr, defAdvX)
	if defended < base {
		t.Fatalf("dim reduction advEx detection %.3f below undefended %.3f", defended, base)
	}
}

func TestDimReductionDefaultK(t *testing.T) {
	dr, err := NewDimReduction(defCorpus.Train, DimReductionConfig{
		Train: detector.TrainConfig{
			Arch: detector.ArchTarget, WidthScale: 0.05, Epochs: 3, BatchSize: 64, Seed: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dr.PCA.Components.Rows != 19 {
		t.Fatalf("default K = %d, want 19", dr.PCA.Components.Rows)
	}
}
