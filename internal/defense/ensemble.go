package defense

import (
	"fmt"

	"malevade/internal/detector"
	"malevade/internal/tensor"
)

// Ensemble combines defenses by probability averaging or malicious-veto
// voting. The paper's §III-C closes with exactly this suggestion: "the
// results suggest we may consider ensemble adversarial training and
// dimension reduction" — adversarial training contributes advEx detection
// with intact TNR, dimensionality reduction contributes robustness for
// malware variants, and the ensemble keeps both.

// EnsembleMode selects how member votes combine.
type EnsembleMode int

// Combination rules.
const (
	// EnsembleMean averages the members' malware probabilities.
	EnsembleMean EnsembleMode = iota + 1
	// EnsembleMaxProb takes the most suspicious member's probability —
	// a malicious veto: any member convinced of malice decides.
	EnsembleMaxProb
	// EnsembleMajority takes the majority class vote (ties → malware).
	EnsembleMajority
)

// String names the mode.
func (m EnsembleMode) String() string {
	switch m {
	case EnsembleMean:
		return "mean"
	case EnsembleMaxProb:
		return "max-prob"
	case EnsembleMajority:
		return "majority"
	default:
		return fmt.Sprintf("EnsembleMode(%d)", int(m))
	}
}

// Ensemble is a Detector built from member detectors.
type Ensemble struct {
	// Members are the combined detectors; all must share InDim.
	Members []detector.Detector
	// Mode defaults to EnsembleMean.
	Mode EnsembleMode
}

var _ detector.Detector = (*Ensemble)(nil)

// NewEnsemble validates and builds an ensemble.
func NewEnsemble(mode EnsembleMode, members ...detector.Detector) (*Ensemble, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("defense: ensemble needs at least one member")
	}
	in := members[0].InDim()
	for i, m := range members[1:] {
		if m.InDim() != in {
			return nil, fmt.Errorf("defense: ensemble member %d width %d != %d", i+1, m.InDim(), in)
		}
	}
	if mode == 0 {
		mode = EnsembleMean
	}
	return &Ensemble{Members: members, Mode: mode}, nil
}

// MalwareProb combines members' probabilities per the mode. For
// EnsembleMajority the result is the vote fraction, which preserves the
// Predict threshold semantics at 0.5.
func (e *Ensemble) MalwareProb(x *tensor.Matrix) []float64 {
	out := make([]float64, x.Rows)
	switch e.Mode {
	case EnsembleMaxProb:
		for _, m := range e.Members {
			for i, p := range m.MalwareProb(x) {
				if p > out[i] {
					out[i] = p
				}
			}
		}
	case EnsembleMajority:
		for _, m := range e.Members {
			for i, c := range m.Predict(x) {
				if c == 1 {
					out[i]++
				}
			}
		}
		inv := 1 / float64(len(e.Members))
		for i := range out {
			out[i] *= inv
		}
	default: // EnsembleMean
		for _, m := range e.Members {
			for i, p := range m.MalwareProb(x) {
				out[i] += p
			}
		}
		inv := 1 / float64(len(e.Members))
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// Predict thresholds the combined probability at 0.5; EnsembleMajority ties
// resolve to malware (a detector errs toward caution).
func (e *Ensemble) Predict(x *tensor.Matrix) []int {
	probs := e.MalwareProb(x)
	out := make([]int, len(probs))
	for i, p := range probs {
		if p >= 0.5 {
			out[i] = 1
		}
	}
	return out
}

// InDim returns the members' shared feature width.
func (e *Ensemble) InDim() int { return e.Members[0].InDim() }
