package defense

import (
	"testing"

	"malevade/internal/attack"
	"malevade/internal/dataset"
	"malevade/internal/detector"
	"malevade/internal/evaluation"
)

func ensembleMembers(t *testing.T) (advTrained *detector.DNN, dimRed *DimReduction) {
	t.Helper()
	trainMal := defCorpus.Train.FilterLabel(dataset.LabelMalware)
	j := &attack.JSMA{Model: defBase.Net, Theta: 0.1, Gamma: 0.02}
	advX := attack.AdvMatrix(j.Run(trainMal.X))
	sets, err := BuildAdvTrainingSet(defCorpus.Train, advX)
	if err != nil {
		t.Fatal(err)
	}
	advTrained, err = AdversarialTraining(sets, detector.TrainConfig{
		Arch:       detector.ArchTarget,
		WidthScale: 0.1,
		Epochs:     15,
		BatchSize:  64,
		Seed:       43,
	})
	if err != nil {
		t.Fatal(err)
	}
	dimRed, err = NewDimReduction(defCorpus.Train, DimReductionConfig{
		K: 19,
		Train: detector.TrainConfig{
			Arch:       detector.ArchTarget,
			WidthScale: 0.1,
			Epochs:     15,
			BatchSize:  64,
			Seed:       47,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return advTrained, dimRed
}

func TestNewEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(EnsembleMean); err == nil {
		t.Fatal("expected empty-members error")
	}
}

func TestEnsembleModeString(t *testing.T) {
	tests := []struct {
		give EnsembleMode
		want string
	}{
		{give: EnsembleMean, want: "mean"},
		{give: EnsembleMaxProb, want: "max-prob"},
		{give: EnsembleMajority, want: "majority"},
		{give: EnsembleMode(9), want: "EnsembleMode(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

// TestEnsembleAdvTrainingPlusDimReduction is the paper's closing suggestion
// made concrete: the ensemble's advEx detection should match or beat the
// weaker member while keeping TNR above the worst member's.
func TestEnsembleAdvTrainingPlusDimReduction(t *testing.T) {
	advTrained, dimRed := ensembleMembers(t)
	ens, err := NewEnsemble(EnsembleMaxProb, advTrained, dimRed)
	if err != nil {
		t.Fatal(err)
	}
	advA := detector.DetectionRate(advTrained, defAdvX)
	advD := detector.DetectionRate(dimRed, defAdvX)
	advE := detector.DetectionRate(ens, defAdvX)
	worse := advA
	if advD < worse {
		worse = advD
	}
	if advE < worse {
		t.Fatalf("ensemble advEx %.3f below both members (%.3f, %.3f)", advE, advA, advD)
	}
	cm := evaluation.Evaluate(ens, defCorpus.Test)
	if cm.TPR() < 0.7 {
		t.Fatalf("ensemble TPR %.3f", cm.TPR())
	}
}

func TestEnsembleModesAgreeOnShape(t *testing.T) {
	advTrained, dimRed := ensembleMembers(t)
	for _, mode := range []EnsembleMode{EnsembleMean, EnsembleMaxProb, EnsembleMajority} {
		ens, err := NewEnsemble(mode, advTrained, dimRed)
		if err != nil {
			t.Fatal(err)
		}
		probs := ens.MalwareProb(defTestMal.X)
		pred := ens.Predict(defTestMal.X)
		if len(probs) != defTestMal.Len() || len(pred) != defTestMal.Len() {
			t.Fatalf("mode %s output sizes wrong", mode)
		}
		for i := range probs {
			if probs[i] < 0 || probs[i] > 1 {
				t.Fatalf("mode %s prob %v", mode, probs[i])
			}
			if (probs[i] >= 0.5) != (pred[i] == 1) {
				t.Fatalf("mode %s prob/pred inconsistent at %d", mode, i)
			}
		}
	}
	if ens, _ := NewEnsemble(EnsembleMean, advTrained); ens.InDim() != 491 {
		t.Fatal("InDim")
	}
}

func TestEnsembleMajorityTieIsMalware(t *testing.T) {
	advTrained, dimRed := ensembleMembers(t)
	ens, err := NewEnsemble(EnsembleMajority, advTrained, dimRed)
	if err != nil {
		t.Fatal(err)
	}
	// Find a sample where the two members disagree; majority-of-two tie
	// must resolve to malware (vote fraction 0.5 → predict 1).
	pa := advTrained.Predict(defTestMal.X)
	pd := dimRed.Predict(defTestMal.X)
	pe := ens.Predict(defTestMal.X)
	for i := range pa {
		if pa[i] != pd[i] {
			if pe[i] != 1 {
				t.Fatalf("tie at %d resolved to clean", i)
			}
			return
		}
	}
	t.Skip("members never disagreed on this corpus")
}
