package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"malevade/internal/defense"
)

// ManifestFormat tags the manifest encoding for forward compatibility.
const ManifestFormat = "malevade-registry-v1"

// manifestFile is the per-model manifest name inside the model directory.
const manifestFile = "manifest.json"

// VersionInfo is one entry of a model's append-only version history.
type VersionInfo struct {
	// Version is the model-scoped version number (1, 2, ... — numbers are
	// never reused, even after GC removes an entry).
	Version int `json:"version"`
	// File is the model file's base name inside the model directory.
	File string `json:"file"`
	// SHA256 is the hex checksum of the model file, verified on every
	// load so a corrupted artifact can never be promoted silently.
	SHA256 string `json:"sha256"`
	// Generation is the serving generation last assigned to this version
	// (0 if it was never live).
	Generation int64 `json:"generation,omitempty"`
	// CreatedAt is when the version was registered.
	CreatedAt time.Time `json:"created_at"`
	// Pinned protects the version from GC even when it is not live.
	Pinned bool `json:"pinned,omitempty"`
	// Defenses is the servable defense chain the version is wrapped in
	// when promoted (empty for a bare model).
	Defenses defense.Chain `json:"defenses,omitempty"`
}

// Manifest is the JSON document persisted at <dir>/<name>/manifest.json:
// the model's identity, its append-only version history and which version
// is live. Writes go through writeManifest (temp file + rename) so a crash
// can never leave a half-written manifest behind.
type Manifest struct {
	// Format must equal ManifestFormat.
	Format string `json:"format"`
	// Name is the model name; it must match the directory name.
	Name string `json:"name"`
	// Live is the version currently served (0 = none).
	Live int `json:"live"`
	// NextVersion is the number the next registered version receives;
	// keeping it explicit preserves append-only numbering across GC.
	NextVersion int `json:"next_version"`
	// Versions is the retained history, ascending by Version.
	Versions []VersionInfo `json:"versions"`
}

// ValidateName checks a registry model name: 1–64 characters drawn from
// [a-z0-9._-], starting and ending with an alphanumeric. The charset
// excludes path separators, so a valid name is always safe to use as a
// directory name.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("registry: model name must not be empty")
	}
	if len(name) > 64 {
		return fmt.Errorf("registry: model name %q exceeds 64 characters", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		alnum := (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
		if alnum {
			continue
		}
		if (c == '.' || c == '_' || c == '-') && i > 0 && i < len(name)-1 {
			continue
		}
		return fmt.Errorf("registry: model name %q: invalid character %q at %d (want [a-z0-9._-], alphanumeric at the ends)", name, c, i)
	}
	return nil
}

// validFileName accepts only bare base names, so a hostile manifest can
// never point a load outside its own model directory.
func validFileName(file string) bool {
	return file != "" && file != "." && file != ".." &&
		!strings.ContainsAny(file, `/\`)
}

// Validate checks the manifest's internal consistency: format tag, name,
// strictly ascending version numbers below NextVersion, safe file names,
// well-formed checksums, and a Live version that exists. Defense chains
// are checked for servability, since a promoted version is wrapped with
// nothing but its model file.
func (m *Manifest) Validate() error {
	if m.Format != ManifestFormat {
		return fmt.Errorf("registry: unsupported manifest format %q (want %q)", m.Format, ManifestFormat)
	}
	if err := ValidateName(m.Name); err != nil {
		return err
	}
	if m.NextVersion < 1 {
		return fmt.Errorf("registry: manifest %s: next_version %d must be >= 1", m.Name, m.NextVersion)
	}
	prev := 0
	liveSeen := false
	files := make(map[string]bool, len(m.Versions))
	for i, v := range m.Versions {
		if v.Version <= prev {
			return fmt.Errorf("registry: manifest %s: versions[%d]=%d not strictly ascending", m.Name, i, v.Version)
		}
		if v.Version >= m.NextVersion {
			return fmt.Errorf("registry: manifest %s: version %d >= next_version %d", m.Name, v.Version, m.NextVersion)
		}
		if !validFileName(v.File) {
			return fmt.Errorf("registry: manifest %s: version %d has unsafe file name %q", m.Name, v.Version, v.File)
		}
		if files[v.File] {
			return fmt.Errorf("registry: manifest %s: file %q claimed by two versions", m.Name, v.File)
		}
		files[v.File] = true
		if raw, err := hex.DecodeString(v.SHA256); err != nil || len(raw) != 32 {
			return fmt.Errorf("registry: manifest %s: version %d has malformed sha256 %q", m.Name, v.Version, v.SHA256)
		}
		if v.Generation < 0 {
			return fmt.Errorf("registry: manifest %s: version %d has negative generation", m.Name, v.Version)
		}
		if len(v.Defenses) > 0 {
			if err := v.Defenses.ValidateServable(); err != nil {
				return fmt.Errorf("registry: manifest %s: version %d: %w", m.Name, v.Version, err)
			}
		}
		if v.Version == m.Live {
			liveSeen = true
		}
		prev = v.Version
	}
	if m.Live < 0 || (m.Live > 0 && !liveSeen) {
		return fmt.Errorf("registry: manifest %s: live version %d not in history", m.Name, m.Live)
	}
	return nil
}

// version finds a history entry by number.
func (m *Manifest) version(v int) (*VersionInfo, bool) {
	for i := range m.Versions {
		if m.Versions[i].Version == v {
			return &m.Versions[i], true
		}
	}
	return nil, false
}

// maxGeneration is the largest generation recorded in the history.
func (m *Manifest) maxGeneration() int64 {
	var out int64
	for _, v := range m.Versions {
		if v.Generation > out {
			out = v.Generation
		}
	}
	return out
}

// clone deep-copies the manifest so mutations can be prepared, persisted,
// and only then committed to the in-memory state.
func (m *Manifest) clone() Manifest {
	out := *m
	out.Versions = make([]VersionInfo, len(m.Versions))
	copy(out.Versions, m.Versions)
	for i := range out.Versions {
		out.Versions[i].Defenses = append(defense.Chain(nil), m.Versions[i].Defenses...)
	}
	return out
}

// DecodeManifest parses and validates one manifest document. Every failure
// mode on corrupt, truncated or hostile input — malformed JSON, unknown
// fields, trailing data, inconsistent histories, unsafe file names — is an
// error, never a panic; the fuzz target FuzzManifest holds the decoder to
// exactly this contract.
func DecodeManifest(data []byte) (Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("registry: decode manifest: %w", err)
	}
	if dec.More() {
		return Manifest{}, fmt.Errorf("registry: trailing data after manifest")
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// readManifest loads and decodes <dir>/manifest.json.
func readManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: read manifest: %w", err)
	}
	return DecodeManifest(data)
}

// writeManifest persists the manifest atomically: encode to a temp file in
// the same directory, fsync-free rename over the final name. A concurrent
// reader therefore always sees either the old or the new document.
func writeManifest(dir string, m Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: encode manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*.json")
	if err != nil {
		return fmt.Errorf("registry: write manifest: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("registry: write manifest: %w", cmp(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, manifestFile)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("registry: write manifest: %w", err)
	}
	return nil
}

// cmp returns the first non-nil error.
func cmp(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// copyFile copies src into dstDir/dstName via a temp file + rename,
// returning the hex SHA-256 of the bytes written.
func copyFile(src, dstDir, dstName string) (sha string, err error) {
	in, err := os.Open(src)
	if err != nil {
		return "", fmt.Errorf("registry: open model %s: %w", src, err)
	}
	defer in.Close()
	tmp, err := os.CreateTemp(dstDir, ".model-*.gob")
	if err != nil {
		return "", fmt.Errorf("registry: stage model: %w", err)
	}
	defer func() {
		if err != nil {
			os.Remove(tmp.Name())
		}
	}()
	h := sha256.New()
	if _, err := io.Copy(io.MultiWriter(tmp, h), in); err != nil {
		tmp.Close()
		return "", fmt.Errorf("registry: copy model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("registry: copy model: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dstDir, dstName)); err != nil {
		return "", fmt.Errorf("registry: install model: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// fileSHA256 hashes an existing file, for checksum verification on load.
func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
