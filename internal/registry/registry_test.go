package registry

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"malevade/internal/defense"
	"malevade/internal/nn"
	"malevade/internal/rng"
	"malevade/internal/tensor"
)

// saveNet builds a small deterministic MLP and saves it under dir.
func saveNet(t testing.TB, dir, name string, dims []int, seed uint64) (string, *nn.Network) {
	t.Helper()
	net, err := nn.NewMLP(nn.MLPConfig{Dims: dims, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path, net
}

func openTestRegistry(t *testing.T, dir string) *Registry {
	t.Helper()
	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestRegisterPromoteLifecycle(t *testing.T) {
	src := t.TempDir()
	pathA, netA := saveNet(t, src, "a.gob", []int{4, 8, 2}, 1)
	pathB, netB := saveNet(t, src, "b.gob", []int{4, 8, 2}, 2)
	r := openTestRegistry(t, t.TempDir())

	// First registration always promotes.
	info, err := r.Register(RegisterRequest{Name: "target", Path: pathA})
	if err != nil {
		t.Fatal(err)
	}
	if info.Live != 1 || info.Generation != 1 || len(info.Versions) != 1 {
		t.Fatalf("after first register: %+v", info)
	}

	x := tensor.New(3, 4)
	rnd := rng.New(7)
	for i := range x.Data {
		x.Data[i] = rnd.Float64()
	}
	wantA := netA.PredictClass(x)
	wantB := netB.PredictClass(x)

	inst, err := r.Acquire("target")
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Scorer.Predict(x); !equalInts(got, wantA) {
		t.Fatalf("v1 predictions %v, want %v", got, wantA)
	}
	if inst.Version != 1 || inst.Generation != 1 || inst.Name != "target" {
		t.Fatalf("instance identity %+v", inst)
	}
	inst.Release()

	// A non-promoting registration appends history but keeps v1 live.
	info, err = r.Register(RegisterRequest{Name: "target", Path: pathB})
	if err != nil {
		t.Fatal(err)
	}
	if info.Live != 1 || len(info.Versions) != 2 {
		t.Fatalf("after staged register: %+v", info)
	}

	// Promotion swaps to v2 with a fresh generation.
	info, err = r.Promote("target", 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Live != 2 || info.Generation != 2 {
		t.Fatalf("after promote: %+v", info)
	}
	inst, err = r.Acquire("target")
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Scorer.Predict(x); !equalInts(got, wantB) {
		t.Fatalf("v2 predictions %v, want %v", got, wantB)
	}
	inst.Release()

	// Re-promoting an old version is allowed and advances the generation.
	info, err = r.Promote("target", 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Live != 1 || info.Generation != 3 {
		t.Fatalf("after re-promote: %+v", info)
	}
}

func TestRegistryRestartPersistence(t *testing.T) {
	src := t.TempDir()
	pathA, netA := saveNet(t, src, "a.gob", []int{4, 8, 2}, 3)
	pathB, _ := saveNet(t, src, "b.gob", []int{4, 8, 2}, 4)
	dir := t.TempDir()

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(RegisterRequest{Name: "bare", Path: pathA}); err != nil {
		t.Fatal(err)
	}
	chain := defense.Chain{{Kind: defense.KindSqueeze, Bits: 3, Threshold: 0.2}}
	if _, err := r.Register(RegisterRequest{Name: "hard", Path: pathA, Defenses: chain}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(RegisterRequest{Name: "bare", Path: pathB, Promote: true}); err != nil {
		t.Fatal(err)
	}
	wantBare, err := r.Get("bare")
	if err != nil {
		t.Fatal(err)
	}
	r.Close()

	// Reopen: names, live versions, generations and defenses all survive.
	r2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	gotBare, err := r2.Get("bare")
	if err != nil {
		t.Fatal(err)
	}
	if gotBare.Live != wantBare.Live || gotBare.Generation != wantBare.Generation {
		t.Fatalf("bare after restart: %+v, want live %d gen %d", gotBare, wantBare.Live, wantBare.Generation)
	}
	hard, err := r2.Get("hard")
	if err != nil {
		t.Fatal(err)
	}
	if len(hard.Defenses) != 1 {
		t.Fatalf("hard lost its defense chain after restart: %+v", hard)
	}
	inst, err := r2.Acquire("hard")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Det == nil {
		t.Fatal("restarted defended model has no defended verdict path")
	}
	inst.Release()

	// New generations continue past the persisted maximum.
	info, err := r2.Promote("bare", 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation <= wantBare.Generation {
		t.Fatalf("post-restart promotion generation %d did not advance past %d",
			info.Generation, wantBare.Generation)
	}
	_ = netA
}

func TestRegistryGC(t *testing.T) {
	src := t.TempDir()
	path, _ := saveNet(t, src, "a.gob", []int{4, 8, 2}, 5)
	dir := t.TempDir()
	r := openTestRegistry(t, dir)

	if _, err := r.Register(RegisterRequest{Name: "m", Path: path, Pin: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Register(RegisterRequest{Name: "m", Path: path, Promote: true}); err != nil {
			t.Fatal(err)
		}
	}
	// Versions: 1 (pinned), 2, 3, 4 (live). GC drops 2 and 3.
	info, removed, err := r.GC("m")
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || len(info.Versions) != 2 {
		t.Fatalf("GC removed %d, kept %+v", removed, info.Versions)
	}
	if info.Versions[0].Version != 1 || info.Versions[1].Version != 4 {
		t.Fatalf("GC kept wrong versions: %+v", info.Versions)
	}
	for _, file := range []string{"v000002.gob", "v000003.gob"} {
		if _, err := os.Stat(filepath.Join(dir, "m", file)); !os.IsNotExist(err) {
			t.Fatalf("GCed file %s still on disk (err %v)", file, err)
		}
	}
	// Numbering stays append-only past the GCed range.
	info, err = r.Register(RegisterRequest{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Versions[len(info.Versions)-1].Version; got != 5 {
		t.Fatalf("post-GC version %d, want 5 (numbers are never reused)", got)
	}
	// The staged (unpinned, non-live) v5 is itself collectable; after that
	// a GC with nothing to collect is a no-op.
	if _, removed, err = r.GC("m"); err != nil || removed != 1 {
		t.Fatalf("GC of staged version: removed %d, err %v", removed, err)
	}
	if _, removed, err = r.GC("m"); err != nil || removed != 0 {
		t.Fatalf("idle GC: removed %d, err %v", removed, err)
	}
}

func TestRegistryCapacityAndErrors(t *testing.T) {
	src := t.TempDir()
	path, _ := saveNet(t, src, "a.gob", []int{4, 8, 2}, 6)
	r, err := Open(Options{Dir: t.TempDir(), MaxModels: 1, MaxVersions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.Register(RegisterRequest{Name: "only", Path: path}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(RegisterRequest{Name: "second", Path: path}); !errors.Is(err, ErrFull) {
		t.Fatalf("over MaxModels: %v, want ErrFull", err)
	}
	if _, err := r.Register(RegisterRequest{Name: "only", Path: path}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(RegisterRequest{Name: "only", Path: path}); !errors.Is(err, ErrFull) {
		t.Fatalf("over MaxVersions: %v, want ErrFull", err)
	}

	if _, err := r.Acquire("ghost"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("acquire unknown: %v", err)
	}
	if _, err := r.Get("ghost"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("get unknown: %v", err)
	}
	if err := r.Delete("ghost"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("delete unknown: %v", err)
	}
	if _, err := r.Promote("only", 99); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("promote missing version: %v", err)
	}
	if _, err := r.LoadLive("ghost"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("LoadLive unknown: %v", err)
	}
	for _, bad := range []string{"", "UPPER", "has space", "../escape", "a/b", ".dot", "-lead", "trail-"} {
		if _, err := r.Register(RegisterRequest{Name: bad, Path: path}); err == nil {
			t.Errorf("register accepted invalid name %q", bad)
		}
	}

	if err := r.Delete("only"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after delete = %d", r.Len())
	}

	r.Close()
	if _, err := r.Register(RegisterRequest{Name: "x", Path: path}); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after Close: %v", err)
	}
}

func TestOpenRejectsCorruptStore(t *testing.T) {
	src := t.TempDir()
	path, _ := saveNet(t, src, "a.gob", []int{4, 8, 2}, 7)

	// Corrupt manifest JSON.
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "m"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "m", manifestFile), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a corrupt manifest")
	}

	// Tampered model file: checksum mismatch must fail Open.
	dir2 := t.TempDir()
	r, err := Open(Options{Dir: dir2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(RegisterRequest{Name: "m", Path: path}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if err := os.WriteFile(filepath.Join(dir2, "m", "v000001.gob"), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir2}); err == nil {
		t.Fatal("Open accepted a model file whose checksum does not match the manifest")
	}

	// A manifest whose directory name disagrees with its Name field.
	dir3 := t.TempDir()
	r, err = Open(Options{Dir: dir3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(RegisterRequest{Name: "m", Path: path}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if err := os.Rename(filepath.Join(dir3, "m"), filepath.Join(dir3, "other")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir3}); err == nil {
		t.Fatal("Open accepted a model directory renamed away from its manifest name")
	}
}

// TestRegistryPromoteHammer hammers Acquire/score against repeated
// promotions under the race detector: every scored batch must be computed
// wholly by the version its pinned instance advertises — generations
// alternate deterministically between two registered versions, so a torn
// promotion would surface as predictions that disagree with the
// generation's expected model.
func TestRegistryPromoteHammer(t *testing.T) {
	src := t.TempDir()
	pathA, netA := saveNet(t, src, "a.gob", []int{4, 8, 2}, 11)
	pathB, netB := saveNet(t, src, "b.gob", []int{4, 8, 2}, 12)
	r := openTestRegistry(t, t.TempDir())
	if _, err := r.Register(RegisterRequest{Name: "m", Path: pathA}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(RegisterRequest{Name: "m", Path: pathB}); err != nil {
		t.Fatal(err)
	}

	x := tensor.New(5, 4)
	rnd := rng.New(42)
	for i := range x.Data {
		x.Data[i] = rnd.Float64()
	}
	wantA := netA.PredictClass(x)
	wantB := netB.PredictClass(x)
	if equalInts(wantA, wantB) {
		t.Fatal("models A and B agree on the probe batch; hammer can't detect torn promotions")
	}
	// Generation g served version 1 (model A) when g is odd: the first
	// registration takes generation 1 = version 1, and the promote loop
	// below alternates 2, 1, 2, ... from generation 2 on.
	wantFor := func(gen int64, version int) []int {
		if version == 1 {
			return wantA
		}
		return wantB
	}

	const clients = 8
	var (
		stop      atomic.Bool
		responses atomic.Int64
		wg        sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				inst, err := r.Acquire("m")
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				got := inst.Scorer.Predict(x)
				want := wantFor(inst.Generation, inst.Version)
				if !equalInts(got, want) {
					t.Errorf("generation %d (version %d): predictions %v, want %v — instance torn by promotion",
						inst.Generation, inst.Version, got, want)
					inst.Release()
					return
				}
				inst.Release()
				responses.Add(1)
			}
		}()
	}

	const minResponses = 200
	const maxPromotes = 4000
	promotes := 0
	for ; promotes < maxPromotes && (responses.Load() < minResponses || promotes < 30); promotes++ {
		version := 2 - promotes%2 // 2, 1, 2, 1, ...
		if _, err := r.Promote("m", version); err != nil {
			t.Fatalf("promote %d: %v", promotes, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if responses.Load() == 0 {
		t.Fatal("no scores completed during the hammer")
	}
	t.Logf("%d consistent scores across %d promotions", responses.Load(), promotes)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
