// Package registry is the disk-backed model registry: a durable store of
// named detector models, each with an append-only version history, a JSON
// manifest (name, version, generation, optional defense chain, checksum)
// and atomic promotion of one version to "live" behind the same
// refcounted-drain machinery the HTTP daemon's hot-reload uses — a request
// pinned to an instance is never torn by a promotion, and the displaced
// engine drains before it closes.
//
// The registry is the multi-detector layer of the daemon (the paper's
// evaluation is inherently multi-model: target vs. substitute detectors,
// hardened variants per defense), so one process can serve, compare and
// campaign against many named detectors instead of one anonymous slot:
//
//	reg, _ := registry.Open(registry.Options{Dir: "models"})
//	reg.Register(registry.RegisterRequest{Name: "target", Path: "target.gob"})
//	inst, _ := reg.Acquire("target")
//	defer inst.Release()
//	logits := inst.Scorer.Logits(x)
//
// Disk layout: one directory per model under Options.Dir, holding
// manifest.json plus one immutable v%06d.gob file per retained version.
// Manifests persist atomically (temp file + rename), model files are
// checksummed on write and verified on every load, and Open rebuilds the
// exact serving state — names, live versions, generations — after a
// restart.
package registry

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"malevade/internal/defense"
	"malevade/internal/nn"
	"malevade/internal/obs"
	"malevade/internal/serve"
)

// Registry capacity and lookup errors. API layers map these onto the wire
// taxonomy (unknown_model, version_conflict, registry_full).
var (
	// ErrUnknownModel rejects operations addressing a name the registry
	// does not hold.
	ErrUnknownModel = errors.New("registry: unknown model")
	// ErrVersionConflict rejects a promotion of a version that does not
	// exist (or was GCed), and serving a model with no live version.
	ErrVersionConflict = errors.New("registry: version conflict")
	// ErrFull rejects a registration past MaxModels or MaxVersions.
	ErrFull = errors.New("registry: registry full")
	// ErrClosed rejects operations on a closed registry.
	ErrClosed = errors.New("registry: closed")
)

// Options configures a Registry. Dir is required; everything else has
// defaults.
type Options struct {
	// Dir is the registry root directory (created if missing).
	Dir string
	// Temperature is the softmax temperature instances serve with
	// (0 means 1).
	Temperature float64
	// Scorer tunes each instance's batched scoring engine.
	Scorer serve.Options
	// MaxModels caps the number of named models (default 64).
	MaxModels int
	// MaxVersions caps each model's retained history (default 32); GC
	// unpinned old versions to make room.
	MaxVersions int
	// Gen, when non-nil, is a shared generation counter (the HTTP daemon
	// passes its own so default-slot reloads and registry promotions draw
	// from one monotonic sequence). Open raises it to at least the largest
	// generation persisted in the manifests.
	Gen *atomic.Int64
	// Logger, when set, receives lifecycle events — models recovered on
	// Open, registrations, promotions, deletions, GC — with structured
	// fields. Nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxModels <= 0 {
		o.MaxModels = 64
	}
	if o.MaxVersions <= 0 {
		o.MaxVersions = 32
	}
	return o
}

// model is one named entry: its manifest (guarded by the registry mutex),
// its live slot and its served-request counter.
type model struct {
	name     string
	manifest Manifest
	slot     Slot
	requests atomic.Int64
}

// Registry is the disk-backed named-model store. All methods are safe for
// concurrent use: mutations (Register, Promote, Delete, GC) serialize on
// opMu — held across their disk I/O — while the scoring path (Acquire,
// Get, List) only ever takes the short map mutex, so a slow registration
// never stalls model-addressed requests.
type Registry struct {
	opts Options
	gen  *atomic.Int64
	log  *slog.Logger

	promotions atomic.Int64 // live-version swaps (Promote + promoting Registers)

	// opMu serializes mutations, including their file copies, hashing and
	// model loads. Lock order: opMu before mu, never the reverse.
	opMu sync.Mutex
	// mu guards the models map, the closed flag and each model's manifest
	// pointer; held only for map/manifest access, never across I/O.
	mu     sync.Mutex
	models map[string]*model
	closed bool
}

// Open loads (or initializes) the registry rooted at opts.Dir, rebuilding
// every model's live instance from its manifest. A manifest that fails to
// decode, a missing model file or a checksum mismatch fails Open — a
// half-corrupt registry never serves silently.
func Open(opts Options) (*Registry, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("registry: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create %s: %w", opts.Dir, err)
	}
	r := &Registry{opts: opts, gen: opts.Gen, log: obs.Or(opts.Logger), models: make(map[string]*model)}
	if r.gen == nil {
		r.gen = new(atomic.Int64)
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("registry: read %s: %w", opts.Dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		dir := filepath.Join(opts.Dir, name)
		if _, err := os.Stat(filepath.Join(dir, manifestFile)); err != nil {
			continue // not a model directory
		}
		man, err := readManifest(dir)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("registry: model %s: %w", name, err)
		}
		if man.Name != name {
			r.Close()
			return nil, fmt.Errorf("registry: model directory %s holds manifest for %q", name, man.Name)
		}
		m := &model{name: name, manifest: man}
		if man.Live > 0 {
			vi, ok := man.version(man.Live)
			if !ok {
				r.Close()
				return nil, fmt.Errorf("registry: model %s: live version %d missing", name, man.Live)
			}
			inst, err := r.buildVersion(m, *vi, vi.Generation, true)
			if err != nil {
				r.Close()
				return nil, err
			}
			m.slot.Store(inst)
		}
		if g := man.maxGeneration(); g > 0 {
			raiseAtLeast(r.gen, g)
		}
		r.models[name] = m
		r.log.Info("registry model recovered",
			slog.String("model", name),
			slog.Int("live_version", man.Live),
			slog.Int("versions", len(man.Versions)))
	}
	r.log.Info("registry opened",
		slog.String("dir", opts.Dir),
		slog.Int("models", len(r.models)),
		slog.Int64("generation", r.gen.Load()))
	return r, nil
}

// raiseAtLeast lifts a monotonic counter to at least v.
func raiseAtLeast(c *atomic.Int64, v int64) {
	for {
		cur := c.Load()
		if cur >= v || c.CompareAndSwap(cur, v) {
			return
		}
	}
}

// buildVersion assembles an instance for one manifest entry. With verify
// set, the stored file is checked against its recorded checksum first
// (Open and Promote verify; Register skips it — the copy that just wrote
// the file computed the sum).
func (r *Registry) buildVersion(m *model, vi VersionInfo, gen int64, verify bool) (*Instance, error) {
	path := filepath.Join(r.opts.Dir, m.name, vi.File)
	if verify {
		sum, err := fileSHA256(path)
		if err != nil {
			return nil, fmt.Errorf("registry: model %s version %d: %w", m.name, vi.Version, err)
		}
		if sum != vi.SHA256 {
			return nil, fmt.Errorf("registry: model %s version %d: checksum mismatch (manifest %s, file %s)",
				m.name, vi.Version, vi.SHA256, sum)
		}
	}
	inst, err := BuildInstance(InstanceConfig{
		Path:        path,
		Name:        m.name,
		Version:     vi.Version,
		Generation:  gen,
		Temperature: r.opts.Temperature,
		Scorer:      r.opts.Scorer,
		Defenses:    vi.Defenses,
	})
	if err != nil {
		return nil, fmt.Errorf("registry: model %s version %d: %w", m.name, vi.Version, err)
	}
	inst.requests = &m.requests
	return inst, nil
}

// RegisterRequest describes one registration: copy the model file at Path
// into the store as a new version of Name.
type RegisterRequest struct {
	// Name is the model to append to (created when new).
	Name string
	// Path is the nn.SaveFile model file to ingest.
	Path string
	// Defenses, when non-empty, is the servable defense chain the version
	// is wrapped in whenever it is live.
	Defenses defense.Chain
	// Promote makes the new version live immediately. A model's first
	// version is always promoted (a model with no live version serves
	// nothing).
	Promote bool
	// Pin protects the version from GC even after it stops being live.
	Pin bool
}

// Register ingests a model file as a new version: validate, copy with
// checksum, append to the manifest, persist, and (when promoting) swap the
// live instance and drain the old one. The version history is append-only
// — numbers are never reused, even after GC.
func (r *Registry) Register(req RegisterRequest) (Info, error) {
	if err := ValidateName(req.Name); err != nil {
		return Info{}, err
	}
	if len(req.Defenses) > 0 {
		if err := req.Defenses.ValidateServable(); err != nil {
			return Info{}, fmt.Errorf("registry: %w", err)
		}
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return Info{}, ErrClosed
	}
	m, exists := r.models[req.Name]
	if !exists && len(r.models) >= r.opts.MaxModels {
		n := len(r.models)
		r.mu.Unlock()
		return Info{}, fmt.Errorf("%w: %d models at capacity %d", ErrFull, n, r.opts.MaxModels)
	}
	r.mu.Unlock()
	if !exists {
		m = &model{name: req.Name, manifest: Manifest{
			Format:      ManifestFormat,
			Name:        req.Name,
			NextVersion: 1,
		}}
	}
	// From here on only opMu is held: manifests are only mutated under
	// opMu, so reading m.manifest is safe, and the scoring path's map
	// lookups stay unblocked through the disk I/O below.
	if len(m.manifest.Versions) >= r.opts.MaxVersions {
		return Info{}, fmt.Errorf("%w: model %q holds %d versions at capacity %d (gc or delete first)",
			ErrFull, req.Name, len(m.manifest.Versions), r.opts.MaxVersions)
	}

	dir := filepath.Join(r.opts.Dir, req.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Info{}, fmt.Errorf("registry: create %s: %w", dir, err)
	}
	next := m.manifest.NextVersion
	file := fmt.Sprintf("v%06d.gob", next)
	sum, err := copyFile(req.Path, dir, file)
	if err != nil {
		return Info{}, err
	}

	man := m.manifest.clone()
	vi := VersionInfo{
		Version:   next,
		File:      file,
		SHA256:    sum,
		CreatedAt: time.Now().UTC(),
		Pinned:    req.Pin,
		Defenses:  append(defense.Chain(nil), req.Defenses...),
	}
	promote := req.Promote || man.Live == 0

	var inst *Instance
	if promote {
		gen := r.gen.Add(1)
		inst, err = r.buildVersion(m, vi, gen, false)
		if err != nil {
			os.Remove(filepath.Join(dir, file))
			return Info{}, err
		}
		vi.Generation = gen
		man.Live = next
	}
	man.Versions = append(man.Versions, vi)
	man.NextVersion = next + 1
	if err := writeManifest(dir, man); err != nil {
		if inst != nil {
			inst.Retire()
		}
		os.Remove(filepath.Join(dir, file))
		return Info{}, err
	}

	// Commit: manifest pointer and map entry change under the short map
	// mutex so readers always see a consistent pair. A Close that landed
	// during the I/O wins — back the registration out instead of leaking
	// a live instance into a closed registry.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		if inst != nil {
			inst.Retire()
		}
		return Info{}, ErrClosed
	}
	m.manifest = man
	r.models[req.Name] = m
	var old *Instance
	if inst != nil {
		old = m.slot.Swap(inst)
	}
	info := r.infoLocked(m)
	r.mu.Unlock()
	// Retire outside the map mutex: draining blocks on in-flight
	// requests, and the swap handed us exclusive ownership.
	if old != nil {
		old.Retire()
	}
	if promote {
		r.promotions.Add(1)
	}
	r.log.Info("model registered",
		slog.String("model", req.Name),
		slog.Int("version", next),
		slog.Bool("promoted", promote),
		slog.Int64("generation", vi.Generation),
		slog.String("sha256", sum))
	return info, nil
}

// Promote makes an already-registered version live, assigning it a fresh
// serving generation (re-promoting the live version is allowed and still
// advances the generation — the disk artifact is reloaded, exactly like
// the default slot's /v1/reload). The displaced instance drains before its
// engine closes; in-flight requests finish on the generation they started.
func (r *Registry) Promote(name string, version int) (Info, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	m, err := r.lookup(name)
	if err != nil {
		return Info{}, err
	}
	vi, ok := m.manifest.version(version)
	if !ok {
		return Info{}, fmt.Errorf("%w: model %q has no version %d", ErrVersionConflict, name, version)
	}
	gen := r.gen.Add(1)
	inst, err := r.buildVersion(m, *vi, gen, true)
	if err != nil {
		return Info{}, err
	}
	man := m.manifest.clone()
	lv, _ := man.version(version)
	lv.Generation = gen
	man.Live = version
	if err := writeManifest(filepath.Join(r.opts.Dir, name), man); err != nil {
		inst.Retire()
		return Info{}, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		inst.Retire()
		return Info{}, ErrClosed
	}
	m.manifest = man
	old := m.slot.Swap(inst)
	info := r.infoLocked(m)
	r.mu.Unlock()
	if old != nil {
		old.Retire()
	}
	r.promotions.Add(1)
	r.log.Info("model promoted",
		slog.String("model", name),
		slog.Int("version", version),
		slog.Int64("generation", gen))
	return info, nil
}

// lookup finds a model under the map mutex, refusing on a closed
// registry. Callers that read or mutate the manifest must hold opMu.
func (r *Registry) lookup(name string) (*model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return m, nil
}

// Delete removes a model entirely: the live instance drains and closes,
// and the model directory (manifest and every version file) is deleted.
func (r *Registry) Delete(name string) error {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	m, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	delete(r.models, name)
	old := m.slot.Swap(nil)
	r.mu.Unlock()
	// The directory is removed while opMu is still held, so a concurrent
	// Register of the same name cannot recreate it mid-removal; the drain
	// can wait until the disk state is settled (instances hold the model
	// in memory, not the file).
	err := os.RemoveAll(filepath.Join(r.opts.Dir, name))
	if old != nil {
		old.Retire()
	}
	if err != nil {
		return fmt.Errorf("registry: delete %s: %w", name, err)
	}
	r.log.Info("model deleted", slog.String("model", name))
	return nil
}

// GC drops a model's unpinned, non-live versions — manifest entries and
// files both — and reports how many were removed. Version numbering stays
// append-only: NextVersion is untouched, so a GCed number is never reused.
func (r *Registry) GC(name string) (Info, int, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	m, err := r.lookup(name)
	if err != nil {
		return Info{}, 0, err
	}
	man := m.manifest.clone()
	kept := man.Versions[:0]
	var doomed []string
	for _, v := range man.Versions {
		if v.Version == man.Live || v.Pinned {
			kept = append(kept, v)
			continue
		}
		doomed = append(doomed, v.File)
	}
	if len(doomed) == 0 {
		return r.info(m), 0, nil
	}
	man.Versions = kept
	dir := filepath.Join(r.opts.Dir, name)
	if err := writeManifest(dir, man); err != nil {
		return Info{}, 0, err
	}
	r.mu.Lock()
	m.manifest = man
	info := r.infoLocked(m)
	r.mu.Unlock()
	for _, file := range doomed {
		os.Remove(filepath.Join(dir, file))
	}
	return info, len(doomed), nil
}

// info renders a model's Info, taking the map mutex itself.
func (r *Registry) info(m *model) Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.infoLocked(m)
}

// Acquire pins the named model's live instance for the duration of one
// request; callers must Release it. Unknown names and models with no live
// version are errors an API layer maps to 404 unknown_model and 409
// version_conflict.
func (r *Registry) Acquire(name string) (*Instance, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	m, ok := r.models[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	inst := m.slot.Acquire()
	if inst == nil {
		return nil, fmt.Errorf("%w: model %q has no live version", ErrVersionConflict, name)
	}
	return inst, nil
}

// LoadLive loads a private copy of the named model's live version network
// — the crafting-model path for campaigns that attack a registered
// detector white-box (gradient crafting mutates per-network caches, so
// every caller gets its own copy).
func (r *Registry) LoadLive(name string) (*nn.Network, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	m, ok := r.models[name]
	var path string
	if ok {
		if vi, live := m.manifest.version(m.manifest.Live); live {
			path = filepath.Join(r.opts.Dir, name, vi.File)
		}
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if path == "" {
		return nil, fmt.Errorf("%w: model %q has no live version", ErrVersionConflict, name)
	}
	return nn.LoadFile(path)
}

// LoadVersion loads a private copy of one specific retained version of the
// named model (0 = the live version), returning the network and the
// version actually loaded — the deterministic-replay path: re-score a
// stored perturbation against any model version still in the registry.
// Unknown names are ErrUnknownModel; a version not retained (or no live
// version when 0 was asked) is ErrVersionConflict.
func (r *Registry) LoadVersion(name string, version int) (*nn.Network, int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, 0, ErrClosed
	}
	m, ok := r.models[name]
	var path string
	if ok {
		if version == 0 {
			version = m.manifest.Live
		}
		if vi, have := m.manifest.version(version); have {
			path = filepath.Join(r.opts.Dir, name, vi.File)
		}
	}
	r.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if path == "" {
		return nil, 0, fmt.Errorf("%w: model %q does not retain version %d", ErrVersionConflict, name, version)
	}
	net, err := nn.LoadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return net, version, nil
}

// Info is one model's public state: identity, live pointer and retained
// history, as served by GET /v1/models.
type Info struct {
	// Name is the model name.
	Name string `json:"name"`
	// Live is the live version number (0 = none).
	Live int `json:"live_version"`
	// Generation is the live instance's serving generation.
	Generation int64 `json:"generation,omitempty"`
	// InDim is the live model's feature width.
	InDim int `json:"in_dim,omitempty"`
	// Defenses names the live version's defense chain, in order.
	Defenses []string `json:"defenses,omitempty"`
	// Requests counts model-addressed scoring/label requests served.
	Requests int64 `json:"requests"`
	// Versions is the retained append-only history.
	Versions []VersionInfo `json:"versions"`
}

// infoLocked renders a model's Info. Callers hold r.mu.
func (r *Registry) infoLocked(m *model) Info {
	man := m.manifest.clone()
	info := Info{
		Name:     m.name,
		Live:     man.Live,
		Requests: m.requests.Load(),
		Versions: man.Versions,
	}
	if vi, ok := man.version(man.Live); ok {
		info.Generation = vi.Generation
		info.Defenses = vi.Defenses.Names()
	}
	if inst := m.slot.Load(); inst != nil {
		info.InDim = inst.Scorer.InDim()
	}
	return info
}

// Get reports one model's state.
func (r *Registry) Get(name string) (Info, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return Info{}, ErrClosed
	}
	m, ok := r.models[name]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return r.infoLocked(m), nil
}

// List reports every model's state, sorted by name.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, r.infoLocked(m))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RequestCounts reports the per-model served-request counters, for the
// daemon's /v1/stats.
func (r *Registry) RequestCounts() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.models))
	for name, m := range r.models {
		out[name] = m.requests.Load()
	}
	return out
}

// Promotions counts live-version swaps over the registry's lifetime —
// explicit Promote calls plus Registers that promoted. Feeds the
// malevade_registry_promotions_total metric.
func (r *Registry) Promotions() int64 { return r.promotions.Load() }

// EngineLoad sums queue depth and in-flight requests across every live
// model instance's scoring engine — the registry side of the daemon's
// saturation gauges (the default slot's engine is added by the server).
func (r *Registry) EngineLoad() (queue, inflight int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.models {
		if inst := m.slot.Load(); inst != nil {
			queue += int64(inst.Scorer.QueueDepth())
			inflight += inst.Scorer.InFlight()
		}
	}
	return queue, inflight
}

// Len reports how many models the registry holds.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.models)
}

// Names reports the registered model names, sorted — the lightweight
// listing health payloads embed so routing tiers learn a replica's
// models without paying for full version histories.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.models))
	for name := range r.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close retires every live instance (draining in-flight holders) and
// rejects further operations. The on-disk store is untouched — a
// subsequent Open resumes exactly this serving state. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	var olds []*Instance
	for _, m := range r.models {
		if old := m.slot.Swap(nil); old != nil {
			olds = append(olds, old)
		}
	}
	r.mu.Unlock()
	for _, old := range olds {
		old.Retire()
	}
}
