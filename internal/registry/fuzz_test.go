package registry

import (
	"encoding/json"
	"testing"
)

// FuzzManifest throws arbitrary bytes at the manifest decoder. The
// contract: corrupt, truncated or hostile manifests — broken JSON, wrong
// formats, descending versions, path-escaping file names, malformed
// checksums — always return an error, never panic; and any manifest the
// decoder does accept must survive an encode/decode round trip unchanged,
// so a registry can always re-read what it just persisted.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(`{"format":"malevade-registry-v1","name":"target","live":1,"next_version":2,` +
		`"versions":[{"version":1,"file":"v000001.gob",` +
		`"sha256":"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",` +
		`"generation":1,"created_at":"2026-07-28T00:00:00Z"}]}`))
	f.Add([]byte(`{"format":"malevade-registry-v1","name":"m","live":0,"next_version":1,"versions":[]}`))
	f.Add([]byte(`{"format":"wrong","name":"m","live":0,"next_version":1}`))
	f.Add([]byte(`{"format":"malevade-registry-v1","name":"../up","live":0,"next_version":1}`))
	f.Add([]byte(`{"format":"malevade-registry-v1","name":"m","live":7,"next_version":1}`))
	f.Add([]byte(`{"format":"malevade-registry-v1","name":"m","live":0,"next_version":3,` +
		`"versions":[{"version":2,"file":"b.gob","sha256":"zz"},{"version":1,"file":"a.gob","sha256":"zz"}]}`))
	f.Add([]byte(`{"format":"malevade-registry-v1","name":"m","live":1,"next_version":2,` +
		`"versions":[{"version":1,"file":"../../etc/passwd","sha256":"aa"}]}`))
	f.Add([]byte(`{"format":"malevade-registry-v1"`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		// Accepted manifests must round-trip bit-identically through the
		// same persistence encoding writeManifest uses.
		encoded, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			t.Fatalf("accepted manifest failed to encode: %v", err)
		}
		back, err := DecodeManifest(encoded)
		if err != nil {
			t.Fatalf("re-decoding an accepted manifest failed: %v\n%s", err, encoded)
		}
		if back.Name != m.Name || back.Live != m.Live ||
			back.NextVersion != m.NextVersion || len(back.Versions) != len(m.Versions) {
			t.Fatalf("manifest round trip drifted: %+v -> %+v", m, back)
		}
	})
}
