package registry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"malevade/internal/defense"
	"malevade/internal/detector"
	"malevade/internal/nn"
	"malevade/internal/serve"
)

// Instance is one immutable, servable build of a model version: the
// batched scoring engine over the loaded network, the optional defended
// verdict path, and the identity (name, version, generation) every
// response it computes is stamped with.
//
// Instances are refcounted so a promotion (or the server's hot-reload) can
// drain one before closing its engine: holders pin with Slot.Acquire,
// release with Release, and Retire blocks until the last in-flight holder
// lets go — the channel-signalled drain the server's reload machinery
// introduced, now shared by every live slot in the process.
type Instance struct {
	// Scorer is the concurrent batched engine over the loaded network.
	Scorer *serve.Scorer
	// Det is the defended verdict path when the version carries a defense
	// chain (nil for a bare model, which scores straight off the logits).
	Det detector.Detector
	// Name is the registry model name ("" for a server's default slot).
	Name string
	// Version is the model-scoped version number this instance serves.
	Version int
	// Generation is the serving generation stamped on every response.
	Generation int64
	// Path is the model file the instance was loaded from.
	Path string
	// LoadedAt is when the instance was built.
	LoadedAt time.Time

	// requests, when non-nil, is the owning model's served-request counter
	// (shared across that model's instances so it survives promotions).
	requests *atomic.Int64

	refs      atomic.Int64
	retired   atomic.Bool
	drained   chan struct{}
	drainOnce sync.Once
}

// InstanceConfig parameterizes BuildInstance.
type InstanceConfig struct {
	// Path is the nn.SaveFile model file to load.
	Path string
	// Name/Version/Generation are the identity stamped on the instance.
	Name       string
	Version    int
	Generation int64
	// Temperature is the softmax temperature of the probability head
	// (0 means 1).
	Temperature float64
	// Scorer tunes the batched engine.
	Scorer serve.Options
	// Defenses, when non-empty, wraps the loaded model in a servable
	// defense chain; verdicts then travel the defended path.
	Defenses defense.Chain
}

// BuildInstance loads the model file and assembles a servable instance:
// engine, optional defense wrap, identity. The API contract is the paper's
// two-class head; any other logits width fails here, at load time, rather
// than panicking inside a scoring handler.
func BuildInstance(cfg InstanceConfig) (*Instance, error) {
	net, err := nn.LoadFile(cfg.Path)
	if err != nil {
		return nil, fmt.Errorf("registry: load model: %w", err)
	}
	if net.OutDim() != 2 {
		return nil, fmt.Errorf("registry: model %s has %d output classes, want 2 (clean/malware)",
			cfg.Path, net.OutDim())
	}
	scorerOpts := cfg.Scorer
	if len(cfg.Defenses) > 0 && scorerOpts.Workers == 0 {
		// A defended instance's verdicts travel the defense chain, not the
		// coalescing engine; keep the (still load-bearing for InDim and
		// drain semantics, but otherwise idle) engine at one worker instead
		// of a full GOMAXPROCS pool.
		scorerOpts.Workers = 1
	}
	temp := cfg.Temperature
	if temp <= 0 {
		temp = 1
	}
	inst := &Instance{
		Scorer:     serve.New(net, temp, scorerOpts),
		Name:       cfg.Name,
		Version:    cfg.Version,
		Generation: cfg.Generation,
		Path:       cfg.Path,
		LoadedAt:   time.Now(),
		drained:    make(chan struct{}),
	}
	if len(cfg.Defenses) > 0 {
		// The defended path wraps a plain DNN over the same loaded network
		// (its inference path is concurrency-safe and pools per-call
		// workspaces).
		det, err := cfg.Defenses.Wrap(&detector.DNN{Net: net, Temperature: temp})
		if err != nil {
			inst.Scorer.Close()
			return nil, fmt.Errorf("registry: build defense chain: %w", err)
		}
		inst.Det = det
	}
	return inst, nil
}

// Release drops one pin taken by Slot.Acquire. When the instance has been
// retired and this was the last pin, the drain is signalled so Retire can
// proceed without polling.
func (i *Instance) Release() {
	if i.refs.Add(-1) == 0 && i.retired.Load() {
		i.signalDrained()
	}
}

func (i *Instance) signalDrained() {
	i.drainOnce.Do(func() { close(i.drained) })
}

// Retire drains a swapped-out instance and closes its engine, returning the
// engine's batch/row counters so callers can fold them into cumulative
// stats. The drain blocks on a channel the last Release closes — no
// polling. Any ref taken after the retired count was observed at zero
// belongs to an Acquire that will fail its recheck without touching the
// engine, so closing it then is safe.
func (i *Instance) Retire() (batches, rows int64) {
	i.retired.Store(true)
	if i.refs.Load() == 0 {
		i.signalDrained()
	}
	<-i.drained
	batches, rows = i.Scorer.Stats()
	i.Scorer.Close()
	return batches, rows
}

// CountRequest bumps the owning model's served-request counter (a no-op
// for instances outside a registry, e.g. a server's default slot).
func (i *Instance) CountRequest() {
	if i.requests != nil {
		i.requests.Add(1)
	}
}

// Slot is an atomically swappable live-instance holder with the
// refcounted-drain contract: Acquire pins the current instance for the
// duration of one request, Swap installs a successor, and retiring the
// predecessor (Instance.Retire) blocks until every pin is released. One
// Slot backs the server's default model; the registry holds one per named
// model.
type Slot struct {
	cur atomic.Pointer[Instance]
}

// Load peeks at the current instance without pinning it. Use only for
// metadata reads (health, listings); scoring paths must Acquire.
func (s *Slot) Load() *Instance { return s.cur.Load() }

// Store installs the first instance (no predecessor to retire).
func (s *Slot) Store(i *Instance) { s.cur.Store(i) }

// Swap installs next and returns the predecessor (nil when empty). The
// caller owns the predecessor exclusively and must Retire it.
func (s *Slot) Swap(next *Instance) *Instance { return s.cur.Swap(next) }

// Acquire pins the current instance for the duration of one request. The
// retry loop closes the race with a concurrent Swap: a ref taken on an
// already-retired instance is dropped and the load retried, so a
// successful Acquire guarantees the instance stayed current at the moment
// its refcount became visible — a Retire can therefore never close an
// engine a request is still using. Returns nil once the slot is empty.
func (s *Slot) Acquire() *Instance {
	for {
		i := s.cur.Load()
		if i == nil {
			return nil
		}
		i.refs.Add(1)
		if s.cur.Load() == i {
			return i
		}
		// Lost the race with a Swap: drop the ref through Release so that
		// if this was the retired instance's last reference, the drain is
		// signalled — a bare decrement here would wedge Retire forever.
		i.Release()
	}
}
