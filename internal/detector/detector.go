// Package detector wraps the nn engine into the malware-detection interface
// the attacks and defenses operate against: class-0 = clean, class-1 =
// malware, the paper's convention. It provides builders for the two models
// in the paper — the proprietary target (simulated here as a 4-layer fully
// connected DNN, §II-B) and the Table IV substitute (491-1200-1500-1300-2) —
// plus the training harness with the paper's hyper-parameters (Adam,
// lr=0.001, batch=256).
package detector

import (
	"fmt"
	"io"

	"malevade/internal/dataset"
	"malevade/internal/nn"
	"malevade/internal/tensor"
)

// Detector scores feature vectors. Implementations must be deterministic at
// inference time.
type Detector interface {
	// MalwareProb returns P(malware|x) for each row of x.
	MalwareProb(x *tensor.Matrix) []float64
	// Predict returns the argmax class per row (0 clean, 1 malware).
	Predict(x *tensor.Matrix) []int
	// InDim returns the expected feature width.
	InDim() int
}

// DNN is a Detector backed by an nn.Network. Temperature applies to the
// output softmax (1 for ordinary models; distilled models keep the training
// temperature semantics at inference per Papernot's formulation, where the
// deployed model runs at T=1 — callers choose).
type DNN struct {
	Net *nn.Network
	// Temperature for the probability head; zero means 1.
	Temperature float64
}

var _ Detector = (*DNN)(nil)

// NewDNN wraps a trained network as a detector.
func NewDNN(net *nn.Network) *DNN { return &DNN{Net: net} }

func (d *DNN) temp() float64 {
	if d.Temperature <= 0 {
		return 1
	}
	return d.Temperature
}

// MalwareProb returns P(class=1|x) per row.
func (d *DNN) MalwareProb(x *tensor.Matrix) []float64 {
	probs := d.Net.Probs(x, d.temp())
	out := make([]float64, probs.Rows)
	for i := range out {
		out[i] = probs.At(i, dataset.LabelMalware)
	}
	return out
}

// Predict returns the argmax class per row.
func (d *DNN) Predict(x *tensor.Matrix) []int { return d.Net.PredictClass(x) }

// InDim returns the feature width.
func (d *DNN) InDim() int { return d.Net.InDim() }

// Confidence returns P(malware|x) for a single sample — the quantity the
// live grey-box experiment tracks ("detects this sample as malware with
// 98.43% confidence").
func (d *DNN) Confidence(x []float64) float64 {
	m := tensor.FromSlice(1, len(x), x)
	return d.MalwareProb(m)[0]
}

// Arch selects one of the paper's two model architectures.
type Arch int

// Architectures from the paper.
const (
	// ArchTarget is the simulated proprietary target: a 4-layer fully
	// connected DNN (input, two hidden layers, logits).
	ArchTarget Arch = iota + 1
	// ArchSubstitute is Table IV's 5-layer DNN:
	// 491 → 1200 → 1500 → 1300 → 2.
	ArchSubstitute
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case ArchTarget:
		return "target-4layer"
	case ArchSubstitute:
		return "substitute-5layer"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Dims returns the layer widths at the given width scale (1 = the paper's
// widths; smaller scales shrink hidden layers proportionally for fast
// profiles, with a floor of 16 units).
func (a Arch) Dims(inDim int, widthScale float64) []int {
	if widthScale <= 0 || widthScale > 1 {
		widthScale = 1
	}
	shrink := func(w int) int {
		v := int(float64(w) * widthScale)
		if v < 16 {
			v = 16
		}
		return v
	}
	switch a {
	case ArchSubstitute:
		return []int{inDim, shrink(1200), shrink(1500), shrink(1300), 2}
	default:
		return []int{inDim, shrink(512), shrink(256), 2}
	}
}

// TrainConfig parameterizes detector training. Zero values default to the
// paper's substitute-model settings where published: batch size 256, Adam
// lr=0.001. Epochs has no safe default and must be set.
type TrainConfig struct {
	// Arch selects the model architecture (default ArchTarget).
	Arch Arch
	// WidthScale shrinks hidden widths for fast profiles (default 1).
	WidthScale float64
	// Epochs is required (the paper uses 1000 for the substitute).
	Epochs int
	// BatchSize defaults to 256.
	BatchSize int
	// LearningRate defaults to 0.001 (Adam).
	LearningRate float64
	// LabelSmoothing bounds trained confidence, emulating the finite
	// confidence of the paper's production model (its live sample scores
	// 98.43%, and single-API additions move it by whole logits). Default
	// 0.08; set negative to disable.
	LabelSmoothing float64
	// WeightDecay is Adam's decoupled L2 coefficient. Default 1e-4; set
	// negative to disable.
	WeightDecay float64
	// Seed drives initialization and shuffling.
	Seed uint64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// OnEpoch, when non-nil, runs after every epoch; a non-nil return
	// aborts training with that error (wrapped, so errors.Is still sees
	// it). Long-running callers use it as a cancellation point — the
	// hardening controller checks its job context here so a cancelled job
	// stops mid-retrain instead of finishing the fit.
	OnEpoch func(epoch int, meanLoss float64) error
}

func (c *TrainConfig) setDefaults() {
	if c.Arch == 0 {
		c.Arch = ArchTarget
	}
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.001
	}
	if c.WidthScale == 0 {
		c.WidthScale = 1
	}
	if c.LabelSmoothing == 0 {
		c.LabelSmoothing = 0.08
	}
	if c.LabelSmoothing < 0 {
		c.LabelSmoothing = 0
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 1e-4
	}
	if c.WeightDecay < 0 {
		c.WeightDecay = 0
	}
}

// Train fits a fresh DNN detector on the dataset.
func Train(d *dataset.Dataset, cfg TrainConfig) (*DNN, error) {
	cfg.setDefaults()
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("detector: Epochs must be set (paper: 1000)")
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("detector: empty training set")
	}
	net, err := nn.NewMLP(nn.MLPConfig{
		Dims: cfg.Arch.Dims(d.X.Cols, cfg.WidthScale),
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("detector: build %s: %w", cfg.Arch, err)
	}
	opt := nn.NewAdam(cfg.LearningRate)
	opt.WeightDecay = cfg.WeightDecay
	err = nn.Train(net, d.X, nn.SmoothedOneHot(d.Y, 2, cfg.LabelSmoothing), nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Optimizer: opt,
		Seed:      cfg.Seed + 1,
		Log:       cfg.Log,
		OnEpoch:   cfg.OnEpoch,
	})
	if err != nil {
		return nil, fmt.Errorf("detector: train %s: %w", cfg.Arch, err)
	}
	return NewDNN(net), nil
}

// DetectionRate returns the fraction of rows predicted as malware — the
// paper's security-evaluation-curve metric, computed over malware (or
// adversarial) example sets.
func DetectionRate(d Detector, x *tensor.Matrix) float64 {
	if x.Rows == 0 {
		return 0
	}
	pred := d.Predict(x)
	hits := 0
	for _, p := range pred {
		if p == dataset.LabelMalware {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// Accuracy returns label agreement over a labelled dataset.
func Accuracy(d Detector, ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	pred := d.Predict(ds.X)
	correct := 0
	for i, p := range pred {
		if p == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}
