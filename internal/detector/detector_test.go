package detector

import (
	"testing"

	"malevade/internal/dataset"
	"malevade/internal/tensor"
)

// smallCorpus generates one tiny corpus per test binary; training tests
// share it to stay fast on a single core.
var smallCorpus = func() *dataset.Corpus {
	c, err := dataset.Generate(dataset.TableIConfig(1).Scaled(150))
	if err != nil {
		panic(err)
	}
	return c
}()

func trainSmallTarget(t *testing.T) *DNN {
	t.Helper()
	d, err := Train(smallCorpus.Train, TrainConfig{
		Arch:       ArchTarget,
		WidthScale: 0.1,
		Epochs:     12,
		BatchSize:  64,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestArchDims(t *testing.T) {
	tests := []struct {
		name  string
		arch  Arch
		scale float64
		want  []int
	}{
		{name: "substitute paper widths", arch: ArchSubstitute, scale: 1, want: []int{491, 1200, 1500, 1300, 2}},
		{name: "target default", arch: ArchTarget, scale: 1, want: []int{491, 512, 256, 2}},
		{name: "substitute tenth", arch: ArchSubstitute, scale: 0.1, want: []int{491, 120, 150, 130, 2}},
		{name: "floor at 16", arch: ArchTarget, scale: 0.01, want: []int{491, 16, 16, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.arch.Dims(491, tt.scale)
			if len(got) != len(tt.want) {
				t.Fatalf("dims %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("dims %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestArchString(t *testing.T) {
	if ArchTarget.String() != "target-4layer" || ArchSubstitute.String() != "substitute-5layer" {
		t.Fatal("arch names wrong")
	}
	if Arch(9).String() != "Arch(9)" {
		t.Fatal("unknown arch name wrong")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(smallCorpus.Train, TrainConfig{}); err == nil {
		t.Fatal("expected error without Epochs")
	}
	empty := smallCorpus.Train.Subset(nil)
	if _, err := Train(empty, TrainConfig{Epochs: 1}); err == nil {
		t.Fatal("expected error on empty dataset")
	}
}

func TestTrainedDetectorSeparates(t *testing.T) {
	d := trainSmallTarget(t)
	trainAcc := Accuracy(d, smallCorpus.Train)
	if trainAcc < 0.9 {
		t.Fatalf("train accuracy %.3f < 0.9", trainAcc)
	}
	testAcc := Accuracy(d, smallCorpus.Test)
	if testAcc < 0.8 {
		t.Fatalf("test accuracy %.3f < 0.8", testAcc)
	}
	// Test accuracy should trail train accuracy (domain shift exists)
	// but not collapse.
	if testAcc > trainAcc+0.02 {
		t.Logf("note: test accuracy %.3f above train %.3f (small-sample noise)", testAcc, trainAcc)
	}
}

func TestMalwareProbInUnitInterval(t *testing.T) {
	d := trainSmallTarget(t)
	probs := d.MalwareProb(smallCorpus.Val.X)
	if len(probs) != smallCorpus.Val.Len() {
		t.Fatalf("%d probs for %d rows", len(probs), smallCorpus.Val.Len())
	}
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of [0,1]", p)
		}
	}
}

func TestPredictConsistentWithProb(t *testing.T) {
	d := trainSmallTarget(t)
	probs := d.MalwareProb(smallCorpus.Val.X)
	pred := d.Predict(smallCorpus.Val.X)
	for i := range pred {
		wantMal := probs[i] > 0.5
		isMal := pred[i] == dataset.LabelMalware
		if wantMal != isMal {
			t.Fatalf("sample %d: prob %.3f but predicted %d", i, probs[i], pred[i])
		}
	}
}

func TestConfidenceSingleSample(t *testing.T) {
	d := trainSmallTarget(t)
	mal := smallCorpus.Test.FilterLabel(dataset.LabelMalware)
	c := d.Confidence(mal.X.Row(0))
	if c < 0 || c > 1 {
		t.Fatalf("confidence %v", c)
	}
}

func TestDetectionRateBounds(t *testing.T) {
	d := trainSmallTarget(t)
	mal := smallCorpus.Test.FilterLabel(dataset.LabelMalware)
	clean := smallCorpus.Test.FilterLabel(dataset.LabelClean)
	tpr := DetectionRate(d, mal.X)
	fpr := DetectionRate(d, clean.X)
	if tpr < 0.7 {
		t.Fatalf("malware detection rate %.3f too low", tpr)
	}
	if fpr > 0.25 {
		t.Fatalf("clean false-alarm rate %.3f too high", fpr)
	}
	if tpr <= fpr {
		t.Fatalf("tpr %.3f <= fpr %.3f: detector not discriminating", tpr, fpr)
	}
}

func TestDetectionRateEmpty(t *testing.T) {
	d := trainSmallTarget(t)
	if got := DetectionRate(d, tensor.New(0, d.InDim())); got != 0 {
		t.Fatalf("empty detection rate = %v", got)
	}
}

func TestInDim(t *testing.T) {
	d := trainSmallTarget(t)
	if d.InDim() != 491 {
		t.Fatalf("InDim = %d", d.InDim())
	}
}

func TestTemperatureDefaultsToOne(t *testing.T) {
	d := trainSmallTarget(t)
	p1 := d.MalwareProb(smallCorpus.Val.X)
	d.Temperature = 1
	p2 := d.MalwareProb(smallCorpus.Val.X)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("zero temperature should equal T=1")
		}
	}
}
